#include "store/fault_device.h"

#include <cerrno>
#include <cstring>
#include <map>

#include "common/random.h"
#include "runtime/flags.h"
#include "runtime/rng_stream.h"

namespace bdisk::store {

namespace {

/// Splits `text` on `sep` (no escaping; empty pieces preserved) — the same
/// shape as the channel-spec tokenizer, so the two grammars stay twins.
std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (true) {
    const std::size_t pos = text.find(sep, begin);
    if (pos == std::string::npos) {
      out.push_back(text.substr(begin));
      return out;
    }
    out.push_back(text.substr(begin, pos - begin));
    begin = pos + 1;
  }
}

struct NamedErrno {
  const char* name;
  int value;
};

constexpr NamedErrno kErrnoNames[] = {
    {"EIO", EIO},     {"ENOSPC", ENOSPC}, {"EACCES", EACCES},
    {"EBADF", EBADF}, {"ENXIO", ENXIO},
};

const char* ErrnoName(int err) {
  for (const NamedErrno& e : kErrnoNames) {
    if (e.value == err) return e.name;
  }
  return "?";
}

/// Key-value arguments of one model term (channel_spec.cc idiom): typed
/// extraction, duplicate and unknown-key detection, errors naming tokens.
class ModelArgs {
 public:
  static Result<ModelArgs> Parse(const std::string& model,
                                 const std::vector<std::string>& kvs) {
    ModelArgs args(model);
    for (const std::string& kv : kvs) {
      const std::size_t eq = kv.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == kv.size()) {
        return Status::InvalidArgument(
            "device fault spec: expected key=value in '" + model +
            "', got '" + kv + "'");
      }
      const std::string key = kv.substr(0, eq);
      if (!args.values_.emplace(key, kv.substr(eq + 1)).second) {
        return Status::InvalidArgument("device fault spec: duplicate key '" +
                                       key + "' in '" + model + "'");
      }
    }
    return args;
  }

  Result<std::uint64_t> Uint(const std::string& key, std::uint64_t fallback) {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    consumed_.push_back(key);
    std::uint64_t value = 0;
    if (!runtime::ParseUint64Token(it->second.c_str(), &value)) {
      return Status::InvalidArgument("device fault spec: '" + key + "=" +
                                     it->second + "' in '" + model_ +
                                     "' is not a 64-bit non-negative integer");
    }
    return value;
  }

  Result<std::string> String(const std::string& key, std::string fallback) {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    consumed_.push_back(key);
    return it->second;
  }

  bool Has(const std::string& key) const { return values_.count(key) != 0; }

  /// Fails if any supplied key was never consumed (typo detection).
  Status CheckAllConsumed() const {
    for (const auto& [key, value] : values_) {
      bool used = false;
      for (const std::string& c : consumed_) {
        if (c == key) used = true;
      }
      if (!used) {
        return Status::InvalidArgument("device fault spec: unknown key '" +
                                       key + "' for model '" + model_ + "'");
      }
    }
    return Status::OK();
  }

 private:
  explicit ModelArgs(std::string model) : model_(std::move(model)) {}

  std::string model_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> consumed_;
};

Status ParseOneModel(const std::string& term, DeviceFaultConfig* config) {
  const std::size_t colon = term.find(':');
  const std::string name = term.substr(0, colon);
  std::vector<std::string> kvs;
  if (colon != std::string::npos) {
    kvs = Split(term.substr(colon + 1), ',');
  }
  BDISK_ASSIGN_OR_RETURN(ModelArgs args, ModelArgs::Parse(term, kvs));

  if (name == "none") {
    // No faults; only key checking below.
  } else if (name == "errno") {
    ErrnoFault fault;
    fault.err = EIO;
    Result<std::string> op_arg = args.String("op", "write");
    BDISK_RETURN_NOT_OK(op_arg.status());
    const std::string& op = *op_arg;
    if (op == "read") {
      fault.op = IoOp::kRead;
    } else if (op == "write") {
      fault.op = IoOp::kWrite;
    } else if (op == "sync") {
      fault.op = IoOp::kSync;
    } else {
      return Status::InvalidArgument("device fault spec: 'op=" + op +
                                     "' in '" + term +
                                     "' is not read, write, or sync");
    }
    BDISK_ASSIGN_OR_RETURN(fault.at, args.Uint("at", 0));
    BDISK_ASSIGN_OR_RETURN(fault.count, args.Uint("count", 1));
    if (fault.count == 0) {
      return Status::InvalidArgument(
          "device fault spec: 'count=0' in '" + term + "' injects nothing");
    }
    Result<std::string> err_arg = args.String("err", "EIO");
    BDISK_RETURN_NOT_OK(err_arg.status());
    const std::string& err = *err_arg;
    bool known = false;
    for (const NamedErrno& e : kErrnoNames) {
      if (err == e.name) {
        fault.err = e.value;
        known = true;
      }
    }
    if (!known) {
      return Status::InvalidArgument(
          "device fault spec: 'err=" + err + "' in '" + term +
          "' is not a known errno name (expected EIO, ENOSPC, EACCES, "
          "EBADF, or ENXIO)");
    }
    config->errnos.push_back(fault);
  } else if (name == "short") {
    ShortWriteFault fault;
    BDISK_ASSIGN_OR_RETURN(fault.at, args.Uint("at", 0));
    BDISK_ASSIGN_OR_RETURN(fault.bytes,
                           args.Uint("bytes", ShortWriteFault::kHalfBlock));
    config->shorts.push_back(fault);
  } else if (name == "torn") {
    TornWriteFault fault;
    BDISK_ASSIGN_OR_RETURN(fault.at, args.Uint("at", 0));
    BDISK_ASSIGN_OR_RETURN(fault.bytes,
                           args.Uint("bytes", ShortWriteFault::kHalfBlock));
    BDISK_ASSIGN_OR_RETURN(fault.seed, args.Uint("seed", 0));
    config->torns.push_back(fault);
  } else if (name == "powercut") {
    if (config->powercut.has_value()) {
      return Status::InvalidArgument(
          "device fault spec: more than one powercut model in the "
          "composition ('" + term + "')");
    }
    PowerCutFault fault;
    BDISK_ASSIGN_OR_RETURN(fault.at, args.Uint("at", 0));
    if (args.Has("torn")) {
      BDISK_ASSIGN_OR_RETURN(const std::uint64_t torn, args.Uint("torn", 0));
      fault.torn_bytes = torn;
    }
    config->powercut = fault;
  } else {
    return Status::InvalidArgument(
        "device fault spec: unknown model '" + name +
        "' (expected none, errno, short, torn, or powercut)");
  }
  return args.CheckAllConsumed();
}

}  // namespace

Result<DeviceFaultConfig> ParseDeviceFaultSpec(const std::string& spec) {
  if (spec.empty()) {
    return Status::InvalidArgument("device fault spec: empty specification");
  }
  DeviceFaultConfig config;
  for (const std::string& term : Split(spec, '+')) {
    BDISK_RETURN_NOT_OK(ParseOneModel(term, &config));
  }
  return config;
}

std::string DeviceFaultConfig::Describe() const {
  std::string out;
  const auto append = [&out](const std::string& term) {
    if (!out.empty()) out += '+';
    out += term;
  };
  for (const ErrnoFault& f : errnos) {
    append("errno:op=" + std::string(IoOpToString(f.op)) +
           ",at=" + std::to_string(f.at) +
           (f.count != 1 ? ",count=" + std::to_string(f.count) : "") +
           ",err=" + ErrnoName(f.err));
  }
  for (const ShortWriteFault& f : shorts) {
    append("short:at=" + std::to_string(f.at) +
           (f.bytes != ShortWriteFault::kHalfBlock
                ? ",bytes=" + std::to_string(f.bytes)
                : ""));
  }
  for (const TornWriteFault& f : torns) {
    append("torn:at=" + std::to_string(f.at) +
           (f.bytes != ShortWriteFault::kHalfBlock
                ? ",bytes=" + std::to_string(f.bytes)
                : "") +
           (f.seed != 0 ? ",seed=" + std::to_string(f.seed) : ""));
  }
  if (powercut.has_value()) {
    append("powercut:at=" + std::to_string(powercut->at) +
           (powercut->torn_bytes.has_value()
                ? ",torn=" + std::to_string(*powercut->torn_bytes)
                : ""));
  }
  if (out.empty()) out = "none";
  return out;
}

const ErrnoFault* FaultingBlockDevice::MatchErrno(
    IoOp op, std::uint64_t ordinal) const {
  for (const ErrnoFault& f : config_.errnos) {
    if (f.op == op && ordinal >= f.at && ordinal - f.at < f.count) return &f;
  }
  return nullptr;
}

IoResult FaultingBlockDevice::WritePartial(std::uint64_t index,
                                           const void* data,
                                           std::uint64_t bytes,
                                           std::uint64_t garbage_seed) {
  const std::size_t bs = inner_->block_size();
  if (bytes == ShortWriteFault::kHalfBlock) bytes = bs / 2;
  if (bytes > bs) bytes = bs;
  std::vector<std::uint8_t> sector(bs);
  // Tail: the sector's old contents (the classic torn write), or seeded
  // garbage when a scribble is requested.
  const IoResult read = inner_->ReadBlock(index, sector.data());
  if (!read.ok()) return read;
  std::memcpy(sector.data(), data, static_cast<std::size_t>(bytes));
  if (garbage_seed != 0) {
    Rng rng(runtime::StreamSeed(garbage_seed, index));
    for (std::size_t i = static_cast<std::size_t>(bytes); i < bs; ++i) {
      sector[i] = static_cast<std::uint8_t>(rng.Uniform(256));
    }
  }
  const IoResult write = inner_->WriteBlock(index, sector.data());
  if (!write.ok()) return write;
  return IoResult::Short(IoOp::kWrite, index, bytes);
}

IoResult FaultingBlockDevice::ReadBlock(std::uint64_t index, void* out) {
  const std::uint64_t ordinal = reads_++;
  if (dead_) return IoResult::PowerCut(IoOp::kRead, index);
  if (const ErrnoFault* f = MatchErrno(IoOp::kRead, ordinal)) {
    return IoResult::Errno(IoOp::kRead, f->err, index);
  }
  return inner_->ReadBlock(index, out);
}

IoResult FaultingBlockDevice::WriteBlock(std::uint64_t index,
                                         const void* data) {
  const std::uint64_t ordinal = writes_++;
  if (dead_) return IoResult::PowerCut(IoOp::kWrite, index);
  if (config_.powercut.has_value() && ordinal >= config_.powercut->at) {
    // The boundary: the in-flight write may tear, then the device dies.
    if (ordinal == config_.powercut->at &&
        config_.powercut->torn_bytes.has_value()) {
      (void)WritePartial(index, data, *config_.powercut->torn_bytes, 0);
    }
    dead_ = true;
    return IoResult::PowerCut(IoOp::kWrite, index);
  }
  if (const ErrnoFault* f = MatchErrno(IoOp::kWrite, ordinal)) {
    return IoResult::Errno(IoOp::kWrite, f->err, index);
  }
  for (const ShortWriteFault& f : config_.shorts) {
    if (f.at == ordinal) return WritePartial(index, data, f.bytes, 0);
  }
  for (const TornWriteFault& f : config_.torns) {
    if (f.at == ordinal) {
      const IoResult r = WritePartial(index, data, f.bytes, f.seed);
      // The lying disk: the tear happened, but the caller is told success.
      return r.error == IoError::kShortWrite ? IoResult::Ok() : r;
    }
  }
  return inner_->WriteBlock(index, data);
}

IoResult FaultingBlockDevice::Sync() {
  const std::uint64_t ordinal = syncs_++;
  if (dead_) return IoResult::PowerCut(IoOp::kSync);
  if (const ErrnoFault* f = MatchErrno(IoOp::kSync, ordinal)) {
    return IoResult::Errno(IoOp::kSync, f->err);
  }
  return inner_->Sync();
}

}  // namespace bdisk::store
