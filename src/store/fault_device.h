/// \file fault_device.h
/// \brief Deterministic fault injection for block devices.
///
/// FaultingBlockDevice layers over any BlockDevice and fails chosen
/// operations with chosen typed errors — the same discipline the fault
/// subsystem (src/faults/) brought to the wire, applied to durable
/// storage: every failure a disk can exhibit is injectable, enumerable,
/// and replayable from a textual spec. One grammar (mirroring
/// faults/channel_spec.h) is shared by the tests, the crash-sweep
/// harness, and the benches, so a device fault named anywhere names the
/// same realization.
///
/// Grammar (whitespace-free):
///
///   spec    := model ( '+' model )*
///   model   := name ( ':' kv ( ',' kv )* )?
///   kv      := key '=' value
///
/// Models and their keys (defaults in parentheses):
///
///   none                             no injected faults
///   errno     op (write), at (0), count (1), err (EIO)
///             the at-th .. (at+count-1)-th operation of kind `op`
///             (read | write | sync) fails with the named errno and has
///             no side effect. err ∈ {EIO, ENOSPC, EACCES, EBADF, ENXIO}.
///   short     at (0), bytes (half a block)
///             the at-th write persists only its first `bytes` bytes and
///             reports a typed short write.
///   torn      at (0), bytes (half a block), seed (0)
///             the at-th write persists its first `bytes` bytes; the tail
///             of the sector keeps its OLD contents (seed=0) or is filled
///             with seeded garbage (seed!=0) — and the write REPORTS
///             SUCCESS. This is the lying disk: only checksums can catch
///             it later.
///   powercut  at (0), torn (absent)
///             power dies at write boundary `at`: writes with ordinal
///             < at succeed, the write with ordinal `at` and every later
///             operation (reads and syncs included) fail with a typed
///             power-cut error. With torn=B, the in-flight write at the
///             boundary additionally persists its first B bytes before
///             the device dies — the torn-sector-at-power-cut case.
///
/// Ordinals count operations of the matching kind from device creation,
/// 0-based, including operations that were themselves failed by
/// injection. The crash-sweep harness runs the workload once over a
/// counting pass-through to learn the total write count W, then replays
/// it W+1 times under `powercut:at=k` for k = 0..W.
///
/// Examples:
///
///   powercut:at=7
///   powercut:at=7,torn=256
///   errno:op=write,at=3,err=ENOSPC
///   torn:at=2,bytes=100,seed=9+errno:op=sync,at=0
///
/// Parse errors name the offending token.

#ifndef BDISK_STORE_FAULT_DEVICE_H_
#define BDISK_STORE_FAULT_DEVICE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "store/block_device.h"

namespace bdisk::store {

/// \brief One errno injection: ops [at, at+count) of kind `op` fail.
struct ErrnoFault {
  IoOp op = IoOp::kWrite;
  std::uint64_t at = 0;
  std::uint64_t count = 1;
  int err = 0;  // EIO by default (filled in by the parser/ctor users).
};

/// \brief One short write: write ordinal `at` persists only `bytes`.
struct ShortWriteFault {
  std::uint64_t at = 0;
  /// kHalfBlock = half the device block (resolved at injection time).
  static constexpr std::uint64_t kHalfBlock = ~0ull;
  std::uint64_t bytes = kHalfBlock;
};

/// \brief One silent torn write: write ordinal `at` persists `bytes` new
/// bytes, the sector tail keeps old contents (seed 0) or seeded garbage,
/// and the operation reports success.
struct TornWriteFault {
  std::uint64_t at = 0;
  std::uint64_t bytes = ShortWriteFault::kHalfBlock;
  std::uint64_t seed = 0;
};

/// \brief Power cut at a write boundary.
struct PowerCutFault {
  std::uint64_t at = 0;
  /// Bytes of the in-flight write persisted before death (nullopt: none).
  std::optional<std::uint64_t> torn_bytes;
};

/// \brief Parsed device fault specification.
struct DeviceFaultConfig {
  std::vector<ErrnoFault> errnos;
  std::vector<ShortWriteFault> shorts;
  std::vector<TornWriteFault> torns;
  std::optional<PowerCutFault> powercut;

  /// Canonical re-rendering for logs and test names.
  std::string Describe() const;
};

/// \brief Parses the grammar above. Fails with InvalidArgument naming the
/// offending token on an unknown model, unknown key, malformed value, or
/// unknown errno name.
Result<DeviceFaultConfig> ParseDeviceFaultSpec(const std::string& spec);

/// \brief A BlockDevice that injects the configured faults and otherwise
/// forwards to the wrapped device.
class FaultingBlockDevice final : public BlockDevice {
 public:
  FaultingBlockDevice(std::unique_ptr<BlockDevice> inner,
                      DeviceFaultConfig config)
      : inner_(std::move(inner)), config_(std::move(config)) {}

  std::size_t block_size() const override { return inner_->block_size(); }
  std::uint64_t block_count() const override { return inner_->block_count(); }

  IoResult ReadBlock(std::uint64_t index, void* out) override;
  IoResult WriteBlock(std::uint64_t index, const void* data) override;
  IoResult Sync() override;

  /// Operations attempted so far (ordinals already consumed). The sweep
  /// uses writes_attempted() after a fault-free run to enumerate the
  /// power-cut boundaries 0..W.
  std::uint64_t writes_attempted() const { return writes_; }
  std::uint64_t reads_attempted() const { return reads_; }
  std::uint64_t syncs_attempted() const { return syncs_; }

  /// True once an injected power cut has tripped.
  bool dead() const { return dead_; }

 private:
  /// Errno injection matching op kind `op` at ordinal `ordinal`.
  const ErrnoFault* MatchErrno(IoOp op, std::uint64_t ordinal) const;
  /// Persists the first `bytes` of `data` into sector `index`, tail from
  /// the old contents or seeded garbage.
  IoResult WritePartial(std::uint64_t index, const void* data,
                        std::uint64_t bytes, std::uint64_t garbage_seed);

  std::unique_ptr<BlockDevice> inner_;
  DeviceFaultConfig config_;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  std::uint64_t syncs_ = 0;
  bool dead_ = false;
};

}  // namespace bdisk::store

#endif  // BDISK_STORE_FAULT_DEVICE_H_
