/// \file bitmap.h
/// \brief Free-space bitmap over a block device's sectors.
///
/// The bitmap is DERIVED state: it is rebuilt from the committed catalog
/// at Open and after every Commit (superblocks + catalog extent + every
/// entry's extents), never persisted. Bitmap/catalog divergence is
/// therefore impossible by construction — the catalog is the single
/// source of truth, exactly as the epoch schedule is the single source of
/// truth for the broadcast program.

#ifndef BDISK_STORE_BITMAP_H_
#define BDISK_STORE_BITMAP_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/check.h"

namespace bdisk::store {

/// \brief Bitmap over `size` sectors; a set bit means "in use".
class FreeBitmap {
 public:
  explicit FreeBitmap(std::uint64_t size)
      : size_(size), words_((size + 63) / 64, 0) {}

  std::uint64_t size() const { return size_; }

  bool Test(std::uint64_t index) const {
    BDISK_CHECK(index < size_);
    return (words_[index >> 6] >> (index & 63)) & 1;
  }

  void Set(std::uint64_t index) {
    BDISK_CHECK(index < size_);
    words_[index >> 6] |= 1ull << (index & 63);
  }

  void Clear(std::uint64_t index) {
    BDISK_CHECK(index < size_);
    words_[index >> 6] &= ~(1ull << (index & 63));
  }

  /// Number of free (unset) sectors.
  std::uint64_t FreeCount() const {
    std::uint64_t used = 0;
    for (std::uint64_t w : words_) used += static_cast<std::uint64_t>(
        __builtin_popcountll(w));
    return size_ - used;
  }

  /// First-fit: finds `run` contiguous free sectors, marks them used, and
  /// returns the first index. nullopt if no such run exists.
  std::optional<std::uint64_t> AllocateRun(std::uint64_t run) {
    if (run == 0 || run > size_) return std::nullopt;
    std::uint64_t start = 0;
    std::uint64_t have = 0;
    for (std::uint64_t i = 0; i < size_; ++i) {
      if (Test(i)) {
        start = i + 1;
        have = 0;
        continue;
      }
      if (++have == run) {
        for (std::uint64_t j = start; j <= i; ++j) Set(j);
        return start;
      }
    }
    return std::nullopt;
  }

 private:
  std::uint64_t size_;
  std::vector<std::uint64_t> words_;
};

}  // namespace bdisk::store

#endif  // BDISK_STORE_BITMAP_H_
