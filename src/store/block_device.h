/// \file block_device.h
/// \brief Fixed-geometry block devices: the bottom of the store plane.
///
/// A BlockDevice is an array of `block_count` sectors of `block_size`
/// bytes, addressed by index, with whole-sector reads and writes and an
/// explicit durability barrier (Sync). Everything above — the free-space
/// bitmap, the CRC-stamped catalog, the two-version swap — is written in
/// terms of this interface, which is what makes every failure mode
/// injectable: FaultingBlockDevice (fault_device.h) wraps any device and
/// fails chosen operations with chosen errors, so the recovery sweep can
/// kill the store at every write boundary of a real workload.
///
/// Two implementations ship:
///  * FileBlockDevice — a fixed-size file accessed via pread/pwrite.
///    Partial transfers from the kernel are retried to completion (POSIX
///    permits them on signals and large requests), so a short write that
///    *reports* as short can only come from fault injection — real
///    devices either complete the sector or fail with errno.
///  * MemBlockDevice — an in-memory array for hermetic unit tests.
///
/// The write-atomicity model the store's crash-safety proof relies on:
/// a WriteBlock either persists the whole sector (it returned OK) or is
/// governed by the failure it returned. Torn in-flight sectors at a power
/// cut are modeled explicitly by the fault layer, never assumed away.

#ifndef BDISK_STORE_BLOCK_DEVICE_H_
#define BDISK_STORE_BLOCK_DEVICE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "store/io_result.h"

namespace bdisk::store {

/// \brief Abstract fixed-geometry block device.
class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  /// Sector size in bytes (constant over the device's lifetime).
  virtual std::size_t block_size() const = 0;
  /// Number of sectors.
  virtual std::uint64_t block_count() const = 0;

  /// Reads sector `index` into `out` (block_size() bytes).
  virtual IoResult ReadBlock(std::uint64_t index, void* out) = 0;
  /// Writes `data` (block_size() bytes) to sector `index`.
  virtual IoResult WriteBlock(std::uint64_t index, const void* data) = 0;
  /// Durability barrier: all previously OK writes are on stable storage
  /// when Sync returns OK.
  virtual IoResult Sync() = 0;
};

/// \brief A fixed-size block file accessed via pread/pwrite.
class FileBlockDevice final : public BlockDevice {
 public:
  /// Creates (or truncates to size) `path` as a device of
  /// `block_count * block_size` bytes.
  static Result<std::unique_ptr<FileBlockDevice>> Create(
      const std::string& path, std::size_t block_size,
      std::uint64_t block_count);

  /// Opens an existing device file. The file size must be a non-zero
  /// multiple of `block_size`; the block count is derived from it.
  static Result<std::unique_ptr<FileBlockDevice>> Open(
      const std::string& path, std::size_t block_size);

  ~FileBlockDevice() override;
  FileBlockDevice(const FileBlockDevice&) = delete;
  FileBlockDevice& operator=(const FileBlockDevice&) = delete;

  std::size_t block_size() const override { return block_size_; }
  std::uint64_t block_count() const override { return block_count_; }

  IoResult ReadBlock(std::uint64_t index, void* out) override;
  IoResult WriteBlock(std::uint64_t index, const void* data) override;
  IoResult Sync() override;

 private:
  FileBlockDevice(int fd, std::size_t block_size, std::uint64_t block_count)
      : fd_(fd), block_size_(block_size), block_count_(block_count) {}

  int fd_;
  std::size_t block_size_;
  std::uint64_t block_count_;
};

/// \brief In-memory device for hermetic tests. The backing buffer may be
/// shared between instances (via Attach) to model reopening a device that
/// survived a simulated crash without touching the filesystem.
class MemBlockDevice final : public BlockDevice {
 public:
  using Buffer = std::vector<std::uint8_t>;

  MemBlockDevice(std::size_t block_size, std::uint64_t block_count)
      : buffer_(std::make_shared<Buffer>(block_size * block_count, 0)),
        block_size_(block_size), block_count_(block_count) {}

  /// A second device over the same bytes (the "after reboot" view).
  static std::unique_ptr<MemBlockDevice> Attach(
      std::shared_ptr<Buffer> buffer, std::size_t block_size) {
    return std::unique_ptr<MemBlockDevice>(
        new MemBlockDevice(std::move(buffer), block_size));
  }

  std::shared_ptr<Buffer> buffer() const { return buffer_; }

  std::size_t block_size() const override { return block_size_; }
  std::uint64_t block_count() const override { return block_count_; }

  IoResult ReadBlock(std::uint64_t index, void* out) override;
  IoResult WriteBlock(std::uint64_t index, const void* data) override;
  IoResult Sync() override { return IoResult::Ok(); }

 private:
  MemBlockDevice(std::shared_ptr<Buffer> buffer, std::size_t block_size)
      : buffer_(std::move(buffer)), block_size_(block_size),
        block_count_(buffer_->size() / block_size) {}

  std::shared_ptr<Buffer> buffer_;
  std::size_t block_size_;
  std::uint64_t block_count_;
};

}  // namespace bdisk::store

#endif  // BDISK_STORE_BLOCK_DEVICE_H_
