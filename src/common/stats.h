/// \file stats.h
/// \brief Small online-statistics helpers used by the simulator and benches.

#ifndef BDISK_COMMON_STATS_H_
#define BDISK_COMMON_STATS_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/check.h"

namespace bdisk {

/// \brief Streaming mean/variance/min/max accumulator over raw moments
/// (count, sum, sum of squares).
///
/// Moment sums make Merge() *exactly* order-independent: whenever every
/// observation and every partial sum is exactly representable as a double
/// (e.g. integer-valued latencies with sums below 2^53, which covers all
/// simulator metrics), any partition of a sample stream into
/// sub-accumulators followed by merging reproduces the single-pass
/// accumulation bit for bit, regardless of the partition or the merge
/// order. The sharded simulator relies on this to keep parallel results
/// identical to the serial path (docs/ARCHITECTURE.md, determinism
/// contract). The trade-off versus Welford's algorithm is cancellation for
/// huge means with tiny spread, which slot-valued metrics never hit.
class RunningStats {
 public:
  /// Adds one observation.
  void Add(double x) {
    ++count_;
    sum_ += x;
    sumsq_ += x * x;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  /// Number of observations so far.
  std::uint64_t count() const { return count_; }
  /// Sum of observations (0 when empty).
  double sum() const { return sum_; }
  /// Mean (0 when empty).
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  /// Population variance (0 with < 2 observations).
  double variance() const;
  /// Sample standard deviation (0 with < 2 observations).
  double stddev() const;
  /// Smallest observation (+inf when empty).
  double min() const { return min_; }
  /// Largest observation (-inf when empty).
  double max() const { return max_; }

  /// Merges another accumulator into this one. Exactly order-independent
  /// for exactly-representable observations (see class comment).
  void Merge(const RunningStats& other);

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double sumsq_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// \brief Fixed-bucket histogram over non-negative integer observations
/// (e.g. retrieval latencies in slots). Values beyond the last bucket are
/// counted in an overflow bucket.
class Histogram {
 public:
  /// Creates a histogram with buckets [0, 1, ..., max_value] plus overflow.
  explicit Histogram(std::size_t max_value) : buckets_(max_value + 2, 0) {}

  /// Records one observation.
  void Add(std::uint64_t value) {
    const std::size_t idx =
        value < buckets_.size() - 1 ? static_cast<std::size_t>(value)
                                    : buckets_.size() - 1;
    ++buckets_[idx];
    ++total_;
  }

  /// Total number of observations.
  std::uint64_t total() const { return total_; }

  /// Count recorded in the bucket for `value` (the overflow bucket if the
  /// value exceeds the configured maximum).
  std::uint64_t CountAt(std::uint64_t value) const {
    const std::size_t idx =
        value < buckets_.size() - 1 ? static_cast<std::size_t>(value)
                                    : buckets_.size() - 1;
    return buckets_[idx];
  }

  /// Count in the overflow bucket.
  std::uint64_t OverflowCount() const { return buckets_.back(); }

  /// Smallest value v such that at least `q` (in [0,1]) of the observations
  /// are <= v. Returns 0 on an empty histogram; an answer in the overflow
  /// bucket reports the first overflow value.
  std::uint64_t Quantile(double q) const;

  /// Multi-line "value: count" dump of the non-empty buckets.
  std::string ToString() const;

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
};

/// \brief Greatest common divisor of two positive integers.
std::uint64_t Gcd(std::uint64_t a, std::uint64_t b);

/// \brief Least common multiple, saturating at `cap` (default: no overflow
/// past 2^62; returns cap if the true lcm would exceed it).
std::uint64_t LcmCapped(std::uint64_t a, std::uint64_t b,
                        std::uint64_t cap = (1ULL << 62));

}  // namespace bdisk

#endif  // BDISK_COMMON_STATS_H_
