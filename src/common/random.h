/// \file random.h
/// \brief Deterministic pseudo-random number generation for simulations and
/// workload generators.
///
/// All stochastic components of the library take a `Rng*` so that experiments
/// are reproducible from a single seed. The generator is SplitMix64-seeded
/// xoshiro256**, which is fast, high-quality, and has no global state.

#ifndef BDISK_COMMON_RANDOM_H_
#define BDISK_COMMON_RANDOM_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "common/check.h"

namespace bdisk {

/// \brief xoshiro256** pseudo-random generator with convenience samplers.
///
/// Satisfies the UniformRandomBitGenerator concept so it can also be used
/// with <random> distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator from a 64-bit seed (expanded via SplitMix64).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  /// Re-seeds the generator.
  void Seed(std::uint64_t seed) {
    // SplitMix64 expansion; guarantees a non-zero state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Next raw 64-bit output.
  std::uint64_t operator()() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be positive.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t Uniform(std::uint64_t bound) {
    BDISK_DCHECK(bound > 0);
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    BDISK_DCHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    Uniform(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return UniformDouble() < p;
  }

  /// Geometric-ish exponential sample with the given mean (mean > 0).
  double Exponential(double mean);

  /// Samples `k` distinct indices from [0, n) uniformly (Floyd's algorithm).
  /// Requires k <= n. Result is in no particular order.
  std::vector<std::size_t> SampleWithoutReplacement(std::size_t n,
                                                    std::size_t k);

  /// Fisher–Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (std::size_t i = v->size(); i > 1; --i) {
      std::size_t j = Uniform(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace bdisk

#endif  // BDISK_COMMON_RANDOM_H_
