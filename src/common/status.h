/// \file status.h
/// \brief Error handling primitives (Status / Result<T>) for the bdisk library.
///
/// The library does not throw exceptions. Fallible operations return a
/// `bdisk::Status` or a `bdisk::Result<T>` (a Status together with a value on
/// success), following the Arrow / RocksDB idiom. Use the BDISK_RETURN_NOT_OK
/// and BDISK_ASSIGN_OR_RETURN macros to propagate errors.

#ifndef BDISK_COMMON_STATUS_H_
#define BDISK_COMMON_STATUS_H_

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace bdisk {

/// \brief Machine-readable error category carried by a non-OK Status.
enum class StatusCode : std::uint8_t {
  kOk = 0,
  /// A caller-supplied argument is malformed (e.g. zero window size).
  kInvalidArgument = 1,
  /// The requested object / slot / task does not exist.
  kNotFound = 2,
  /// The instance is provably or heuristically unschedulable.
  kInfeasible = 3,
  /// An algorithmic capacity was exceeded (e.g. exact-solver state budget).
  kResourceExhausted = 4,
  /// Data could not be reconstructed (not enough distinct blocks, bad header).
  kDataLoss = 5,
  /// Internal invariant violation; indicates a library bug.
  kInternal = 6,
  /// The operation is not implemented for the given inputs.
  kNotImplemented = 7,
  /// A storage-device operation failed (errno, short transfer, power cut).
  kIoError = 8,
};

/// \brief Human-readable name of a StatusCode (e.g. "Invalid argument").
const char* StatusCodeToString(StatusCode code);

/// \brief Result of a fallible operation: OK, or a code plus message.
///
/// Status is cheap to copy in the OK case (single pointer, no allocation);
/// error state is heap-allocated and shared.
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  /// Constructs a status with the given code and message. `code` must not be
  /// StatusCode::kOk (use the default constructor for that).
  Status(StatusCode code, std::string message);

  /// \name Named constructors, one per error category.
  /// @{
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  /// @}

  /// True iff this status represents success.
  bool ok() const noexcept { return state_ == nullptr; }

  /// The status code (kOk for an OK status).
  StatusCode code() const noexcept {
    return state_ == nullptr ? StatusCode::kOk : state_->code;
  }

  /// The error message ("" for an OK status).
  const std::string& message() const noexcept {
    static const std::string kEmpty;
    return state_ == nullptr ? kEmpty : state_->message;
  }

  /// \name Category predicates.
  /// @{
  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsInfeasible() const { return code() == StatusCode::kInfeasible; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsDataLoss() const { return code() == StatusCode::kDataLoss; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsIoError() const { return code() == StatusCode::kIoError; }
  /// @}

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  /// Returns a copy of this status with `context` prepended to the message.
  /// OK statuses are returned unchanged.
  Status WithContext(const std::string& context) const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code() && a.message() == b.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  // nullptr means OK.
  std::shared_ptr<const State> state_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// \brief A Status, plus a value of type T when the status is OK.
///
/// Typical use:
/// \code
///   Result<Schedule> r = scheduler.Schedule(tasks);
///   if (!r.ok()) return r.status();
///   const Schedule& s = *r;
/// \endcode
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT: implicit by design

  /// Constructs a failed result. `status` must not be OK.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT: implicit by design
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("Result constructed from OK status");
    }
  }

  /// True iff a value is present.
  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The status: OK() if a value is present, the error otherwise.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// \name Value accessors. Must only be called when ok().
  /// @{
  const T& value() const& { return std::get<T>(repr_); }
  T& value() & { return std::get<T>(repr_); }
  T&& value() && { return std::get<T>(std::move(repr_)); }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }
  /// @}

  /// Returns the value if ok(), otherwise `fallback`.
  T ValueOr(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<Status, T> repr_;
};

/// Propagates a non-OK Status out of the enclosing function.
#define BDISK_RETURN_NOT_OK(expr)                        \
  do {                                                   \
    ::bdisk::Status _bdisk_status = (expr);              \
    if (!_bdisk_status.ok()) return _bdisk_status;       \
  } while (false)

#define BDISK_CONCAT_IMPL(a, b) a##b
#define BDISK_CONCAT(a, b) BDISK_CONCAT_IMPL(a, b)

/// Evaluates `rexpr` (a Result<T>); on error returns the Status, otherwise
/// move-assigns the value into `lhs` (which may be a declaration).
#define BDISK_ASSIGN_OR_RETURN(lhs, rexpr)                             \
  BDISK_ASSIGN_OR_RETURN_IMPL(BDISK_CONCAT(_bdisk_result_, __LINE__), \
                              lhs, rexpr)

#define BDISK_ASSIGN_OR_RETURN_IMPL(result, lhs, rexpr) \
  auto result = (rexpr);                                \
  if (!result.ok()) return result.status();             \
  lhs = std::move(result).value()

}  // namespace bdisk

#endif  // BDISK_COMMON_STATUS_H_
