#include "common/stats.h"

#include <cmath>
#include <sstream>

namespace bdisk {

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  const double n = static_cast<double>(count_);
  const double m = sum_ / n;
  // Clamp: sumsq/n - m^2 can round to a tiny negative for constant data.
  return std::max(0.0, sumsq_ / n - m * m);
}

double RunningStats::stddev() const {
  if (count_ < 2) return 0.0;
  const double n = static_cast<double>(count_);
  const double m = sum_ / n;
  return std::sqrt(std::max(0.0, (sumsq_ - n * m * m) / (n - 1.0)));
}

void RunningStats::Merge(const RunningStats& other) {
  count_ += other.count_;
  sum_ += other.sum_;
  sumsq_ += other.sumsq_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

std::uint64_t Histogram::Quantile(double q) const {
  if (total_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // At least one observation must be covered, so Quantile(0) is the minimum.
  const auto target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total_))));
  std::uint64_t running = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    running += buckets_[i];
    if (running >= target) return i;
  }
  return buckets_.size() - 1;
}

std::string Histogram::ToString() const {
  std::ostringstream oss;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    if (i + 1 == buckets_.size()) {
      oss << ">=" << i << ": " << buckets_[i] << "\n";
    } else {
      oss << i << ": " << buckets_[i] << "\n";
    }
  }
  return oss.str();
}

std::uint64_t Gcd(std::uint64_t a, std::uint64_t b) {
  while (b != 0) {
    const std::uint64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

std::uint64_t LcmCapped(std::uint64_t a, std::uint64_t b, std::uint64_t cap) {
  BDISK_CHECK(a > 0 && b > 0);
  const std::uint64_t g = Gcd(a, b);
  const std::uint64_t a_div = a / g;
  if (a_div > cap / b) return cap;
  return a_div * b;
}

}  // namespace bdisk
