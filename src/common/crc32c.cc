#include "common/crc32c.h"

#include <array>

namespace bdisk {
namespace {

// Reflected CRC-32C table, generated at static-init time from the
// Castagnoli polynomial (reflected form 0x82F63B78).
constexpr std::array<std::uint32_t, 256> MakeTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = MakeTable();

}  // namespace

std::uint32_t Crc32cExtend(std::uint32_t crc, const void* data,
                           std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  crc = ~crc;
  for (std::size_t i = 0; i < len; ++i) {
    crc = (crc >> 8) ^ kTable[(crc ^ p[i]) & 0xFFu];
  }
  return ~crc;
}

}  // namespace bdisk
