/// \file crc32c.h
/// \brief CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected) checksums.
///
/// Used to make broadcast blocks self-verifying: a client that receives a
/// block over a corrupting channel recomputes the checksum and discards the
/// block on mismatch. CRC-32C guarantees detection of any single error
/// burst of at most 32 bits; longer random corruption escapes with
/// probability 2^-32. The implementation is a portable table-driven one —
/// stamping happens once per block at dispersal-store build time, off the
/// GF(2^8) hot path, so hardware CRC instructions are not worth a dispatch
/// layer here.

#ifndef BDISK_COMMON_CRC32C_H_
#define BDISK_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace bdisk {

/// \brief Extends a running CRC-32C with `len` bytes. Start with crc = 0.
std::uint32_t Crc32cExtend(std::uint32_t crc, const void* data,
                           std::size_t len);

/// \brief CRC-32C of one buffer.
inline std::uint32_t Crc32c(const void* data, std::size_t len) {
  return Crc32cExtend(0, data, len);
}

}  // namespace bdisk

#endif  // BDISK_COMMON_CRC32C_H_
