/// \file check.h
/// \brief Internal invariant-checking macros.
///
/// BDISK_CHECK aborts on violation in all build types and is reserved for
/// conditions whose violation would make continuing unsafe. BDISK_DCHECK
/// compiles away in NDEBUG builds and is used for hot-path invariants.

#ifndef BDISK_COMMON_CHECK_H_
#define BDISK_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace bdisk::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "[bdisk] CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace bdisk::internal

#define BDISK_CHECK(expr)                                       \
  do {                                                          \
    if (!(expr)) {                                              \
      ::bdisk::internal::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                           \
  } while (false)

#ifdef NDEBUG
#define BDISK_DCHECK(expr) \
  do {                     \
  } while (false)
#else
#define BDISK_DCHECK(expr) BDISK_CHECK(expr)
#endif

#endif  // BDISK_COMMON_CHECK_H_
