#include "common/zipf.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace bdisk {

ZipfDistribution::ZipfDistribution(std::size_t n, double theta) {
  BDISK_CHECK(n > 0);
  probs_.resize(n);
  double norm = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    probs_[i] = 1.0 / std::pow(static_cast<double>(i + 1), theta);
    norm += probs_[i];
  }
  cumulative_.resize(n);
  double running = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    probs_[i] /= norm;
    running += probs_[i];
    cumulative_[i] = running;
  }
  cumulative_.back() = 1.0;
}

std::size_t ZipfDistribution::Sample(double u) const {
  const auto it =
      std::upper_bound(cumulative_.begin(), cumulative_.end(), u);
  return static_cast<std::size_t>(
      std::min<std::ptrdiff_t>(it - cumulative_.begin(),
                               static_cast<std::ptrdiff_t>(probs_.size()) - 1));
}

}  // namespace bdisk
