#include "common/random.h"

#include <cmath>
#include <unordered_set>

namespace bdisk {

double Rng::Exponential(double mean) {
  BDISK_DCHECK(mean > 0.0);
  // Inverse-CDF; 1 - U in (0, 1] avoids log(0).
  return -mean * std::log(1.0 - UniformDouble());
}

std::vector<std::size_t> Rng::SampleWithoutReplacement(std::size_t n,
                                                       std::size_t k) {
  BDISK_CHECK(k <= n);
  // Floyd's algorithm: k iterations, expected O(k) set operations.
  std::unordered_set<std::size_t> chosen;
  chosen.reserve(k * 2);
  std::vector<std::size_t> out;
  out.reserve(k);
  for (std::size_t j = n - k; j < n; ++j) {
    std::size_t t = Uniform(j + 1);
    if (chosen.count(t) != 0) t = j;
    chosen.insert(t);
    out.push_back(t);
  }
  return out;
}

}  // namespace bdisk
