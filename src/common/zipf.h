/// \file zipf.h
/// \brief Zipf-skewed access distribution — the workload primitive behind
/// client caches, demand drift, and every skewed-popularity experiment.

#ifndef BDISK_COMMON_ZIPF_H_
#define BDISK_COMMON_ZIPF_H_

#include <cstddef>
#include <vector>

namespace bdisk {

/// \brief Zipf(theta) access distribution over `n` items: item i has
/// probability proportional to 1 / (i + 1)^theta.
class ZipfDistribution {
 public:
  ZipfDistribution(std::size_t n, double theta);

  /// Access probability of item i.
  double ProbabilityOf(std::size_t i) const { return probs_[i]; }

  /// All item probabilities, by item index.
  const std::vector<double>& Probabilities() const { return probs_; }

  /// Samples an item given a uniform double u in [0, 1).
  std::size_t Sample(double u) const;

 private:
  std::vector<double> probs_;
  std::vector<double> cumulative_;
};

}  // namespace bdisk

#endif  // BDISK_COMMON_ZIPF_H_
