#include "common/status.h"

#include <sstream>

namespace bdisk {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kInfeasible:
      return "Infeasible";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kDataLoss:
      return "Data loss";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kIoError:
      return "I/O error";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string message) {
  if (code == StatusCode::kOk) {
    // Misuse: an OK status must carry no message. Degrade to Internal so the
    // error is not silently swallowed.
    code = StatusCode::kInternal;
    message = "Status constructed with kOk and a message: " + message;
  }
  state_ = std::make_shared<const State>(State{code, std::move(message)});
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::ostringstream oss;
  oss << StatusCodeToString(code()) << ": " << message();
  return oss.str();
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  return Status(code(), context + ": " + message());
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace bdisk
