#include "gf/gf_dispatch.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace bdisk::gf {

namespace {

using internal::KernelTable;

#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
bool CpuHasSsse3() { return __builtin_cpu_supports("ssse3") != 0; }
bool CpuHasAvx2() { return __builtin_cpu_supports("avx2") != 0; }
#else
bool CpuHasSsse3() { return false; }
bool CpuHasAvx2() { return false; }
#endif

std::vector<const KernelTable*> BuildSupported() {
  std::vector<const KernelTable*> out;
  out.push_back(internal::GenericKernels());
  if (const KernelTable* k = internal::Ssse3Kernels();
      k != nullptr && CpuHasSsse3()) {
    out.push_back(k);
  }
  if (const KernelTable* k = internal::Avx2Kernels();
      k != nullptr && CpuHasAvx2()) {
    out.push_back(k);
  }
  // NEON is architecturally guaranteed on AArch64; the getter is non-null
  // exactly when the binary targets it.
  if (const KernelTable* k = internal::NeonKernels(); k != nullptr) {
    out.push_back(k);
  }
  return out;
}

const KernelTable& Select() {
  const auto& supported = Dispatch::Supported();
  const char* env = std::getenv("BDISK_GF_IMPL");
  if (env != nullptr && *env != '\0') {
    for (const KernelTable* k : supported) {
      if (std::strcmp(k->name, env) == 0) return *k;
    }
    std::fprintf(stderr,
                 "bdisk: BDISK_GF_IMPL=%s is unknown or unsupported on this "
                 "host; falling back to %s (supported:",
                 env, supported.back()->name);
    for (const KernelTable* k : supported) std::fprintf(stderr, " %s", k->name);
    std::fprintf(stderr, ")\n");
  }
  return *supported.back();
}

}  // namespace

const std::vector<const internal::KernelTable*>& Dispatch::Supported() {
  static const std::vector<const KernelTable*> kSupported = BuildSupported();
  return kSupported;
}

const internal::KernelTable& Dispatch::Active() {
  static const KernelTable& kActive = Select();
  return kActive;
}

const internal::KernelTable* Dispatch::ByName(std::string_view name) {
  for (const KernelTable* k : Supported()) {
    if (name == k->name) return k;
  }
  return nullptr;
}

}  // namespace bdisk::gf
