/// \file gf_simd_neon.cc
/// \brief AArch64 NEON (TBL) GF(2^8) kernels — 16 bytes per table pair.
///
/// NEON is architecturally mandatory on AArch64, so no per-file compile
/// flag or runtime probe is needed; gf::Dispatch registers this table
/// whenever the binary targets AArch64. vqtbl1q_u8 is the 16-entry byte
/// table lookup that mirrors PSHUFB (out-of-range indices return 0, which
/// the nibble masks never produce).

#include "gf/gf_kernels.h"

#if defined(__aarch64__)

#include <arm_neon.h>

#include <algorithm>
#include <cstring>

namespace bdisk::gf::internal {

namespace {

/// coeff * v for 16 bytes. vshrq_n_u8 is a per-byte shift, so no mask is
/// needed on the high nibble.
inline uint8x16_t MulVec(uint8x16_t v, uint8x16_t tlo, uint8x16_t thi) {
  const uint8x16_t lo = vandq_u8(v, vdupq_n_u8(0x0F));
  const uint8x16_t hi = vshrq_n_u8(v, 4);
  return veorq_u8(vqtbl1q_u8(tlo, lo), vqtbl1q_u8(thi, hi));
}

inline std::uint8_t MulByte(const NibbleTables& t, std::uint8_t c,
                            std::uint8_t b) {
  return static_cast<std::uint8_t>(t.lo[c][b & 0x0F] ^ t.hi[c][b >> 4]);
}

void NeonXorRow(std::uint8_t* dst, const std::uint8_t* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    vst1q_u8(dst + i, veorq_u8(vld1q_u8(dst + i), vld1q_u8(src + i)));
    vst1q_u8(dst + i + 16,
             veorq_u8(vld1q_u8(dst + i + 16), vld1q_u8(src + i + 16)));
  }
  for (; i + 16 <= n; i += 16) {
    vst1q_u8(dst + i, veorq_u8(vld1q_u8(dst + i), vld1q_u8(src + i)));
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

void NeonMulRow(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t coeff,
                std::size_t n) {
  if (coeff == 0) {
    std::memset(dst, 0, n);
    return;
  }
  if (coeff == 1) {
    if (dst != src) std::memmove(dst, src, n);
    return;
  }
  const NibbleTables& t = GetNibbleTables();
  const uint8x16_t tlo = vld1q_u8(t.lo[coeff]);
  const uint8x16_t thi = vld1q_u8(t.hi[coeff]);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    vst1q_u8(dst + i, MulVec(vld1q_u8(src + i), tlo, thi));
    vst1q_u8(dst + i + 16, MulVec(vld1q_u8(src + i + 16), tlo, thi));
  }
  for (; i + 16 <= n; i += 16) {
    vst1q_u8(dst + i, MulVec(vld1q_u8(src + i), tlo, thi));
  }
  for (; i < n; ++i) dst[i] = MulByte(t, coeff, src[i]);
}

void NeonMulRowAccumulate(std::uint8_t* dst, const std::uint8_t* src,
                          std::uint8_t coeff, std::size_t n) {
  if (coeff == 0) return;
  if (coeff == 1) {
    NeonXorRow(dst, src, n);
    return;
  }
  const NibbleTables& t = GetNibbleTables();
  const uint8x16_t tlo = vld1q_u8(t.lo[coeff]);
  const uint8x16_t thi = vld1q_u8(t.hi[coeff]);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    vst1q_u8(dst + i, veorq_u8(vld1q_u8(dst + i),
                               MulVec(vld1q_u8(src + i), tlo, thi)));
    vst1q_u8(dst + i + 16, veorq_u8(vld1q_u8(dst + i + 16),
                                    MulVec(vld1q_u8(src + i + 16), tlo, thi)));
  }
  for (; i + 16 <= n; i += 16) {
    vst1q_u8(dst + i, veorq_u8(vld1q_u8(dst + i),
                               MulVec(vld1q_u8(src + i), tlo, thi)));
  }
  for (; i < n; ++i) dst[i] ^= MulByte(t, coeff, src[i]);
}

// Terms of one destination row, split by fast path and hoisted out of the
// chunk loop: coeff==1 sources XOR straight into the accumulators; general
// coefficients carry their nibble tables preloaded, so the inner loop is
// branch-free with no table setup.
struct XorTerm {
  const std::uint8_t* src;
};
struct MulTerm {
  const std::uint8_t* src;
  std::uint8_t coeff;
  uint8x16_t tlo;
  uint8x16_t thi;
};

// Sources are processed in groups so the term arrays have a fixed stack
// bound; IDA geometry never exceeds 256 sources, so one group is the norm.
constexpr std::size_t kMaxTerms = 256;

void NeonMatrixMulAccumulate(std::uint8_t* const* dsts,
                             const std::uint8_t* const* srcs,
                             const std::uint8_t* const* coeffs,
                             std::size_t n_dst, std::size_t n_src,
                             std::size_t block_size) {
  const NibbleTables& t = GetNibbleTables();
  XorTerm xterms[kMaxTerms];
  MulTerm mterms[kMaxTerms];
  for (std::size_t pos = 0; pos < block_size; pos += kMatrixTileBytes) {
    const std::size_t len = std::min(kMatrixTileBytes, block_size - pos);
    for (std::size_t i = 0; i < n_dst; ++i) {
      std::uint8_t* const dst = dsts[i] + pos;
      const std::uint8_t* const row = coeffs[i];
      for (std::size_t j0 = 0; j0 < n_src; j0 += kMaxTerms) {
        const std::size_t jn = std::min(n_src - j0, kMaxTerms);
        std::size_t nx = 0;
        std::size_t nm = 0;
        for (std::size_t j = 0; j < jn; ++j) {
          const std::uint8_t c = row[j0 + j];
          if (c == 0) continue;
          const std::uint8_t* const s = srcs[j0 + j] + pos;
          if (c == 1) {
            xterms[nx++] = XorTerm{s};
          } else {
            mterms[nm++] = MulTerm{s, c, vld1q_u8(t.lo[c]), vld1q_u8(t.hi[c])};
          }
        }
        if (nx == 0 && nm == 0) continue;
        std::size_t k = 0;
        // Accumulators live in registers across the whole source loop: each
        // destination chunk is loaded and stored once per tile, not once
        // per source, and source tiles stay L1-resident across
        // destinations. 64 bytes per round — four independent chains.
        for (; k + 64 <= len; k += 64) {
          uint8x16_t acc0 = vld1q_u8(dst + k);
          uint8x16_t acc1 = vld1q_u8(dst + k + 16);
          uint8x16_t acc2 = vld1q_u8(dst + k + 32);
          uint8x16_t acc3 = vld1q_u8(dst + k + 48);
          for (std::size_t x = 0; x < nx; ++x) {
            const std::uint8_t* const s = xterms[x].src + k;
            acc0 = veorq_u8(acc0, vld1q_u8(s));
            acc1 = veorq_u8(acc1, vld1q_u8(s + 16));
            acc2 = veorq_u8(acc2, vld1q_u8(s + 32));
            acc3 = veorq_u8(acc3, vld1q_u8(s + 48));
          }
          for (std::size_t m = 0; m < nm; ++m) {
            const MulTerm& term = mterms[m];
            const std::uint8_t* const s = term.src + k;
            acc0 = veorq_u8(acc0, MulVec(vld1q_u8(s), term.tlo, term.thi));
            acc1 = veorq_u8(acc1, MulVec(vld1q_u8(s + 16), term.tlo, term.thi));
            acc2 = veorq_u8(acc2, MulVec(vld1q_u8(s + 32), term.tlo, term.thi));
            acc3 = veorq_u8(acc3, MulVec(vld1q_u8(s + 48), term.tlo, term.thi));
          }
          vst1q_u8(dst + k, acc0);
          vst1q_u8(dst + k + 16, acc1);
          vst1q_u8(dst + k + 32, acc2);
          vst1q_u8(dst + k + 48, acc3);
        }
        for (; k + 16 <= len; k += 16) {
          uint8x16_t acc = vld1q_u8(dst + k);
          for (std::size_t x = 0; x < nx; ++x) {
            acc = veorq_u8(acc, vld1q_u8(xterms[x].src + k));
          }
          for (std::size_t m = 0; m < nm; ++m) {
            const MulTerm& term = mterms[m];
            acc = veorq_u8(acc, MulVec(vld1q_u8(term.src + k), term.tlo,
                                       term.thi));
          }
          vst1q_u8(dst + k, acc);
        }
        for (; k < len; ++k) {
          std::uint8_t b = dst[k];
          for (std::size_t x = 0; x < nx; ++x) b ^= xterms[x].src[k];
          for (std::size_t m = 0; m < nm; ++m) {
            b ^= MulByte(t, mterms[m].coeff, mterms[m].src[k]);
          }
          dst[k] = b;
        }
      }
    }
  }
}

}  // namespace

const KernelTable* NeonKernels() {
  static constexpr KernelTable kTable = {
      "neon",      NeonXorRow,
      NeonMulRow,  NeonMulRowAccumulate,
      NeonMatrixMulAccumulate,
  };
  return &kTable;
}

}  // namespace bdisk::gf::internal

#else  // Not AArch64: register nothing.

namespace bdisk::gf::internal {
const KernelTable* NeonKernels() { return nullptr; }
}  // namespace bdisk::gf::internal

#endif
