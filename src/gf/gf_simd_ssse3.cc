/// \file gf_simd_ssse3.cc
/// \brief SSSE3 (PSHUFB) GF(2^8) kernels — 16 bytes per shuffle pair.
///
/// Compiled with -mssse3 on x86 (CMake sets it per-file so the rest of the
/// binary stays portable); reached only through gf::Dispatch after a CPUID
/// probe. The split-nibble scheme is documented in gf_kernels.h.

#include "gf/gf_kernels.h"

#if (defined(__x86_64__) || defined(__i386__)) && defined(__SSSE3__)

#include <tmmintrin.h>

#include <algorithm>
#include <cstring>

namespace bdisk::gf::internal {

namespace {

inline __m128i LoadU(const std::uint8_t* p) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
}

inline void StoreU(std::uint8_t* p, __m128i v) {
  _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
}

/// coeff * v for 16 bytes: shuffle the low-nibble table by v & 0x0F, the
/// high-nibble table by v >> 4, XOR the halves.
inline __m128i MulVec(__m128i v, __m128i tlo, __m128i thi, __m128i mask) {
  const __m128i lo = _mm_and_si128(v, mask);
  const __m128i hi = _mm_and_si128(_mm_srli_epi64(v, 4), mask);
  return _mm_xor_si128(_mm_shuffle_epi8(tlo, lo), _mm_shuffle_epi8(thi, hi));
}

inline std::uint8_t MulByte(const NibbleTables& t, std::uint8_t c,
                            std::uint8_t b) {
  return static_cast<std::uint8_t>(t.lo[c][b & 0x0F] ^ t.hi[c][b >> 4]);
}

void Ssse3XorRow(std::uint8_t* dst, const std::uint8_t* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    StoreU(dst + i, _mm_xor_si128(LoadU(dst + i), LoadU(src + i)));
    StoreU(dst + i + 16,
           _mm_xor_si128(LoadU(dst + i + 16), LoadU(src + i + 16)));
  }
  for (; i + 16 <= n; i += 16) {
    StoreU(dst + i, _mm_xor_si128(LoadU(dst + i), LoadU(src + i)));
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

void Ssse3MulRow(std::uint8_t* dst, const std::uint8_t* src,
                 std::uint8_t coeff, std::size_t n) {
  if (coeff == 0) {
    std::memset(dst, 0, n);
    return;
  }
  if (coeff == 1) {
    if (dst != src) std::memmove(dst, src, n);
    return;
  }
  const NibbleTables& t = GetNibbleTables();
  const __m128i tlo = _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo[coeff]));
  const __m128i thi = _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi[coeff]));
  const __m128i mask = _mm_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    StoreU(dst + i, MulVec(LoadU(src + i), tlo, thi, mask));
    StoreU(dst + i + 16, MulVec(LoadU(src + i + 16), tlo, thi, mask));
  }
  for (; i + 16 <= n; i += 16) {
    StoreU(dst + i, MulVec(LoadU(src + i), tlo, thi, mask));
  }
  for (; i < n; ++i) dst[i] = MulByte(t, coeff, src[i]);
}

void Ssse3MulRowAccumulate(std::uint8_t* dst, const std::uint8_t* src,
                           std::uint8_t coeff, std::size_t n) {
  if (coeff == 0) return;
  if (coeff == 1) {
    Ssse3XorRow(dst, src, n);
    return;
  }
  const NibbleTables& t = GetNibbleTables();
  const __m128i tlo = _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo[coeff]));
  const __m128i thi = _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi[coeff]));
  const __m128i mask = _mm_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    StoreU(dst + i, _mm_xor_si128(LoadU(dst + i),
                                  MulVec(LoadU(src + i), tlo, thi, mask)));
    StoreU(dst + i + 16,
           _mm_xor_si128(LoadU(dst + i + 16),
                         MulVec(LoadU(src + i + 16), tlo, thi, mask)));
  }
  for (; i + 16 <= n; i += 16) {
    StoreU(dst + i, _mm_xor_si128(LoadU(dst + i),
                                  MulVec(LoadU(src + i), tlo, thi, mask)));
  }
  for (; i < n; ++i) dst[i] ^= MulByte(t, coeff, src[i]);
}

// Terms of one destination row, split by fast path and hoisted out of the
// chunk loop: coeff==1 sources XOR straight into the accumulators; general
// coefficients carry their nibble tables preloaded, so the inner loop is
// branch-free with no table setup.
struct XorTerm {
  const std::uint8_t* src;
};
struct MulTerm {
  const std::uint8_t* src;
  std::uint8_t coeff;
  __m128i tlo;
  __m128i thi;
};

// Sources are processed in groups so the term arrays have a fixed stack
// bound; IDA geometry never exceeds 256 sources, so one group is the norm.
constexpr std::size_t kMaxTerms = 256;

void Ssse3MatrixMulAccumulate(std::uint8_t* const* dsts,
                              const std::uint8_t* const* srcs,
                              const std::uint8_t* const* coeffs,
                              std::size_t n_dst, std::size_t n_src,
                              std::size_t block_size) {
  const NibbleTables& t = GetNibbleTables();
  const __m128i mask = _mm_set1_epi8(0x0F);
  XorTerm xterms[kMaxTerms];
  MulTerm mterms[kMaxTerms];
  for (std::size_t pos = 0; pos < block_size; pos += kMatrixTileBytes) {
    const std::size_t len = std::min(kMatrixTileBytes, block_size - pos);
    for (std::size_t i = 0; i < n_dst; ++i) {
      std::uint8_t* const dst = dsts[i] + pos;
      const std::uint8_t* const row = coeffs[i];
      for (std::size_t j0 = 0; j0 < n_src; j0 += kMaxTerms) {
        const std::size_t jn = std::min(n_src - j0, kMaxTerms);
        std::size_t nx = 0;
        std::size_t nm = 0;
        for (std::size_t j = 0; j < jn; ++j) {
          const std::uint8_t c = row[j0 + j];
          if (c == 0) continue;
          const std::uint8_t* const s = srcs[j0 + j] + pos;
          if (c == 1) {
            xterms[nx++] = XorTerm{s};
          } else {
            mterms[nm++] = MulTerm{
                s, c,
                _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo[c])),
                _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi[c]))};
          }
        }
        if (nx == 0 && nm == 0) continue;
        std::size_t k = 0;
        // Accumulators live in registers across the whole source loop: each
        // destination chunk is loaded and stored once per tile, not once
        // per source, and source tiles stay L1-resident across
        // destinations. 64 bytes per round — four independent chains.
        for (; k + 64 <= len; k += 64) {
          __m128i acc0 = LoadU(dst + k);
          __m128i acc1 = LoadU(dst + k + 16);
          __m128i acc2 = LoadU(dst + k + 32);
          __m128i acc3 = LoadU(dst + k + 48);
          for (std::size_t x = 0; x < nx; ++x) {
            const std::uint8_t* const s = xterms[x].src + k;
            acc0 = _mm_xor_si128(acc0, LoadU(s));
            acc1 = _mm_xor_si128(acc1, LoadU(s + 16));
            acc2 = _mm_xor_si128(acc2, LoadU(s + 32));
            acc3 = _mm_xor_si128(acc3, LoadU(s + 48));
          }
          for (std::size_t m = 0; m < nm; ++m) {
            const MulTerm& term = mterms[m];
            const std::uint8_t* const s = term.src + k;
            acc0 =
                _mm_xor_si128(acc0, MulVec(LoadU(s), term.tlo, term.thi, mask));
            acc1 = _mm_xor_si128(
                acc1, MulVec(LoadU(s + 16), term.tlo, term.thi, mask));
            acc2 = _mm_xor_si128(
                acc2, MulVec(LoadU(s + 32), term.tlo, term.thi, mask));
            acc3 = _mm_xor_si128(
                acc3, MulVec(LoadU(s + 48), term.tlo, term.thi, mask));
          }
          StoreU(dst + k, acc0);
          StoreU(dst + k + 16, acc1);
          StoreU(dst + k + 32, acc2);
          StoreU(dst + k + 48, acc3);
        }
        for (; k + 16 <= len; k += 16) {
          __m128i acc = LoadU(dst + k);
          for (std::size_t x = 0; x < nx; ++x) {
            acc = _mm_xor_si128(acc, LoadU(xterms[x].src + k));
          }
          for (std::size_t m = 0; m < nm; ++m) {
            const MulTerm& term = mterms[m];
            acc = _mm_xor_si128(
                acc, MulVec(LoadU(term.src + k), term.tlo, term.thi, mask));
          }
          StoreU(dst + k, acc);
        }
        for (; k < len; ++k) {
          std::uint8_t b = dst[k];
          for (std::size_t x = 0; x < nx; ++x) b ^= xterms[x].src[k];
          for (std::size_t m = 0; m < nm; ++m) {
            b ^= MulByte(t, mterms[m].coeff, mterms[m].src[k]);
          }
          dst[k] = b;
        }
      }
    }
  }
}

}  // namespace

const KernelTable* Ssse3Kernels() {
  static constexpr KernelTable kTable = {
      "ssse3",      Ssse3XorRow,
      Ssse3MulRow,  Ssse3MulRowAccumulate,
      Ssse3MatrixMulAccumulate,
  };
  return &kTable;
}

}  // namespace bdisk::gf::internal

#else  // !x86 or no -mssse3: register nothing.

namespace bdisk::gf::internal {
const KernelTable* Ssse3Kernels() { return nullptr; }
}  // namespace bdisk::gf::internal

#endif
