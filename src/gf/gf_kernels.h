/// \file gf_kernels.h
/// \brief Internal registry of GF(2^8) bulk-kernel implementations.
///
/// Each implementation (generic table-driven, SSSE3, AVX2, NEON) fills one
/// KernelTable with the four bulk entry points. The vectorized variants all
/// use the split-nibble technique (gf-complete / ISA-L): a byte product
/// c * b factors through the low and high nibbles of b,
///
///   c * b  =  c * (b & 0x0F)  ^  c * ((b >> 4) << 4)
///
/// so two 16-entry tables — lo[c][x] = c * x and hi[c][x] = c * (x << 4) —
/// turn 16/32 byte products into two byte-shuffles (PSHUFB / VPSHUFB / TBL)
/// and one XOR. The tables for all 256 coefficients total 8 KiB and are
/// built once per process from the scalar field ops.
///
/// This header is internal plumbing: library code calls gf::GFBulk (which
/// routes through gf::Dispatch); tests and benches reach individual
/// implementations through Dispatch::ByName / Dispatch::Supported.

#ifndef BDISK_GF_GF_KERNELS_H_
#define BDISK_GF_GF_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace bdisk::gf::internal {

/// One implementation of the bulk kernels. Every function pointer in a
/// registered table is non-null; the semantics match gf::GFBulk exactly
/// (same coeff==0 / coeff==1 degenerate cases, byte-identical outputs).
struct KernelTable {
  /// Stable lowercase identifier ("generic", "ssse3", "avx2", "neon") —
  /// the values BDISK_GF_IMPL accepts.
  const char* name;

  /// dst[i] ^= src[i] for i in [0, n).
  void (*xor_row)(std::uint8_t* dst, const std::uint8_t* src, std::size_t n);

  /// dst[i] = coeff * src[i] for i in [0, n).
  void (*mul_row)(std::uint8_t* dst, const std::uint8_t* src,
                  std::uint8_t coeff, std::size_t n);

  /// dst[i] ^= coeff * src[i] for i in [0, n).
  void (*mul_row_accumulate)(std::uint8_t* dst, const std::uint8_t* src,
                             std::uint8_t coeff, std::size_t n);

  /// Fused matrix-block product: for every destination block i,
  ///   dsts[i][k] ^= XOR_j coeffs[i][j] * srcs[j][k],  k in [0, block_size).
  /// Tiles the byte range so source tiles stay cache-resident across all
  /// destinations and each destination chunk is read and written once per
  /// tile instead of once per source.
  void (*matrix_mul_accumulate)(std::uint8_t* const* dsts,
                                const std::uint8_t* const* srcs,
                                const std::uint8_t* const* coeffs,
                                std::size_t n_dst, std::size_t n_src,
                                std::size_t block_size);
};

/// Split-nibble product tables shared by the vectorized implementations:
/// lo[c][x] = c * x and hi[c][x] = c * (x << 4) for x in [0, 16). 16-byte
/// aligned so the SIMD paths can use aligned register loads.
struct NibbleTables {
  alignas(16) std::uint8_t lo[256][16];
  alignas(16) std::uint8_t hi[256][16];
};

/// The process-wide nibble tables, built on first use (thread-safe).
const NibbleTables& GetNibbleTables();

/// Byte-position tile used by every matrix_mul_accumulate implementation:
/// small enough that a handful of source tiles stay L1/L2-resident while
/// all destination rows stream over them.
inline constexpr std::size_t kMatrixTileBytes = 4096;

/// Per-implementation kernel tables. A getter returns nullptr when the
/// implementation is compiled out on this architecture; whether the CPU can
/// actually execute it at runtime is checked by gf::Dispatch, not here.
const KernelTable* GenericKernels();
const KernelTable* Ssse3Kernels();
const KernelTable* Avx2Kernels();
const KernelTable* NeonKernels();

}  // namespace bdisk::gf::internal

#endif  // BDISK_GF_GF_KERNELS_H_
