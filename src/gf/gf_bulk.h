/// \file gf_bulk.h
/// \brief Bulk GF(2^8) kernels operating on whole block columns.
///
/// IDA dispersal and reconstruction (paper Figure 3) are matrix products in
/// which each output block is a linear combination of m input blocks:
///
///   dst[k] ^= coeff * src[k]   for every byte k of the block
///
/// These entry points route through gf::Dispatch to the fastest kernel
/// implementation the CPU supports (gf/gf_dispatch.h): split low/high-nibble
/// 16-entry tables driven by SSSE3 PSHUFB / AVX2 VPSHUFB / NEON TBL, which
/// multiply 16–32 bytes per instruction pair, with the portable 256x256
/// product-table kernel as the fallback. The coeff==0 / coeff==1 cases
/// degenerate to a no-op / word-wide XOR on every path.
///
/// The fused MatrixMulAccumulate is the codec hot loop: it computes all
/// n_dst output blocks over the same n_src input blocks in one call, tiling
/// the byte range so each source tile is read once per tile round instead of
/// once per destination, and each destination chunk is read and written once
/// per tile instead of once per source — O(n_dst + n_src) block traffic
/// where the unfused loop pays O(n_dst * n_src).
///
/// GF256::MulSlow remains the reference oracle; tests assert every kernel
/// implementation agrees with it byte-for-byte (tests/gf_simd_test.cc).

#ifndef BDISK_GF_GF_BULK_H_
#define BDISK_GF_GF_BULK_H_

#include <cstddef>
#include <cstdint>

namespace bdisk::gf {

/// \brief Dispatched bulk GF(2^8) kernels.
///
/// All functions are static and thread-safe after first use (tables and the
/// dispatch selection are built on first access under the C++ static-
/// initialization guarantee). Buffers may not overlap unless dst == src
/// exactly.
class GFBulk {
 public:
  /// The 256-entry product row for `coeff`: MulTable(c)[x] == c * x.
  static const std::uint8_t* MulTable(std::uint8_t coeff);

  /// dst[i] ^= src[i] for i in [0, n). Word- or vector-wide XOR.
  static void XorRow(std::uint8_t* dst, const std::uint8_t* src,
                     std::size_t n);

  /// dst[i] = coeff * src[i] for i in [0, n).
  static void MulRow(std::uint8_t* dst, const std::uint8_t* src,
                     std::uint8_t coeff, std::size_t n);

  /// dst[i] ^= coeff * src[i] for i in [0, n) — the IDA inner loop.
  ///
  /// coeff == 0 is a no-op; coeff == 1 is XorRow.
  static void MulRowAccumulate(std::uint8_t* dst, const std::uint8_t* src,
                               std::uint8_t coeff, std::size_t n);

  /// \brief Fused matrix-block multiply-accumulate — the whole-codec loop.
  ///
  /// For every destination block i in [0, n_dst):
  ///
  ///   dsts[i][k] ^= XOR over j of coeffs[i][j] * srcs[j][k]
  ///
  /// for every byte k in [0, block_size). `coeffs[i]` points at the i-th
  /// matrix row (n_src coefficients, e.g. Matrix::RowData). Destination
  /// blocks must be distinct from each other and from every source block;
  /// source blocks may repeat.
  ///
  /// Equivalent to n_dst * n_src MulRowAccumulate calls, but tiled so the
  /// source working set stays cache-resident and each destination chunk is
  /// loaded/stored once per tile, with the accumulator held in registers
  /// across sources on the SIMD paths.
  static void MatrixMulAccumulate(std::uint8_t* const* dsts,
                                  const std::uint8_t* const* srcs,
                                  const std::uint8_t* const* coeffs,
                                  std::size_t n_dst, std::size_t n_src,
                                  std::size_t block_size);
};

}  // namespace bdisk::gf

#endif  // BDISK_GF_GF_BULK_H_
