/// \file gf_bulk.h
/// \brief Bulk GF(2^8) kernels operating on whole block columns.
///
/// IDA dispersal and reconstruction (paper Figure 3) are matrix products in
/// which each output block is a linear combination of m input blocks:
///
///   dst[k] ^= coeff * src[k]   for every byte k of the block
///
/// The scalar GF256::Mul path pays two table lookups and an add per byte
/// (log/exp). These kernels instead precompute, once per process, the full
/// 256 x 256 product table: row `c` is the 256-entry map x -> c*x. A bulk
/// multiply-accumulate then costs one lookup and one XOR per byte, the rows
/// stay resident in L1 (256 B each), and the coeff==0 / coeff==1 cases
/// degenerate to a no-op / word-wide XOR respectively.
///
/// GF256::MulSlow remains the reference oracle; tests assert these kernels
/// agree with it on randomized inputs.

#ifndef BDISK_GF_GF_BULK_H_
#define BDISK_GF_GF_BULK_H_

#include <cstddef>
#include <cstdint>

namespace bdisk::gf {

/// \brief Table-driven bulk GF(2^8) kernels.
///
/// All functions are static and thread-safe after first use (the product
/// table is built on first access under the C++ static-initialization
/// guarantee). Buffers may not overlap unless dst == src exactly.
class GFBulk {
 public:
  /// The 256-entry product row for `coeff`: MulTable(c)[x] == c * x.
  static const std::uint8_t* MulTable(std::uint8_t coeff);

  /// dst[i] ^= src[i] for i in [0, n). Word-wide XOR.
  static void XorRow(std::uint8_t* dst, const std::uint8_t* src,
                     std::size_t n);

  /// dst[i] = coeff * src[i] for i in [0, n).
  static void MulRow(std::uint8_t* dst, const std::uint8_t* src,
                     std::uint8_t coeff, std::size_t n);

  /// dst[i] ^= coeff * src[i] for i in [0, n) — the IDA inner loop.
  ///
  /// coeff == 0 is a no-op; coeff == 1 is XorRow; otherwise one table
  /// lookup and one XOR per byte.
  static void MulRowAccumulate(std::uint8_t* dst, const std::uint8_t* src,
                               std::uint8_t coeff, std::size_t n);
};

}  // namespace bdisk::gf

#endif  // BDISK_GF_GF_BULK_H_
