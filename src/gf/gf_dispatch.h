/// \file gf_dispatch.h
/// \brief Runtime CPU dispatch for the bulk GF(2^8) kernels.
///
/// The binary carries every kernel implementation it was compiled with
/// (generic always; SSSE3/AVX2 on x86-64 via per-file -mssse3/-mavx2, so no
/// global -march is needed and the binary stays portable; NEON on AArch64).
/// At first use, Dispatch probes the CPU once and selects the fastest
/// implementation the hardware supports. All implementations are
/// byte-identical by construction — GF(2^8) algebra is exact — so the
/// choice affects throughput only, never output.
///
/// The environment variable BDISK_GF_IMPL=generic|ssse3|avx2|neon overrides
/// the probe (read once, before the first kernel call). An unknown or
/// unsupported value falls back to the probed best with a one-time warning
/// on stderr, so a stale setting can never produce wrong results or a
/// crash. CI runs the full test suite once per implementation through this
/// override.

#ifndef BDISK_GF_GF_DISPATCH_H_
#define BDISK_GF_GF_DISPATCH_H_

#include <string_view>
#include <vector>

#include "gf/gf_kernels.h"

namespace bdisk::gf {

/// \brief Process-wide kernel selection. All methods are thread-safe; the
/// selection is made once and never changes afterwards.
class Dispatch {
 public:
  /// The selected implementation (probe result or BDISK_GF_IMPL override).
  static const internal::KernelTable& Active();

  /// Name of the selected implementation ("generic", "ssse3", ...).
  static const char* ActiveName() { return Active().name; }

  /// The named implementation, or nullptr if this binary/CPU cannot run it
  /// (unknown name, compiled out, or missing the CPU feature).
  static const internal::KernelTable* ByName(std::string_view name);

  /// Every implementation this host can execute, ordered slowest first
  /// ("generic" is always present and first; the probed best is last).
  static const std::vector<const internal::KernelTable*>& Supported();
};

}  // namespace bdisk::gf

#endif  // BDISK_GF_GF_DISPATCH_H_
