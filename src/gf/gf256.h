/// \file gf256.h
/// \brief Arithmetic in the Galois field GF(2^8).
///
/// Rabin's Information Dispersal Algorithm performs its dispersal and
/// reconstruction transformations "in the domain of a particular irreducible
/// polynomial" (paper, Section 2.1). We use GF(2^8) with the AES reduction
/// polynomial x^8 + x^4 + x^3 + x + 1 (0x11B), so that one field element is
/// one byte and a "block" of bytes is a vector over the field.
///
/// Multiplication and inversion are table-driven via discrete logarithms with
/// generator 3; tables are built once at static-initialization time.
///
/// These are the scalar (per-element) operations; whole-block columns — the
/// IDA hot path — use the bulk kernels in gf/gf_bulk.h instead.

#ifndef BDISK_GF_GF256_H_
#define BDISK_GF_GF256_H_

#include <array>
#include <cstdint>

namespace bdisk::gf {

/// \brief The GF(2^8) field operations.
///
/// All functions are static and branch-light; Add/Sub are XOR.
class GF256 {
 public:
  /// The reduction polynomial x^8 + x^4 + x^3 + x + 1.
  static constexpr std::uint16_t kPolynomial = 0x11B;
  /// A multiplicative generator of the field.
  static constexpr std::uint8_t kGenerator = 0x03;

  /// Field addition (XOR; identical to subtraction in characteristic 2).
  static std::uint8_t Add(std::uint8_t a, std::uint8_t b) { return a ^ b; }

  /// Field subtraction (same as addition).
  static std::uint8_t Sub(std::uint8_t a, std::uint8_t b) { return a ^ b; }

  /// Field multiplication.
  static std::uint8_t Mul(std::uint8_t a, std::uint8_t b) {
    if (a == 0 || b == 0) return 0;
    const unsigned s = tables().log[a] + tables().log[b];
    return tables().exp[s];  // exp table is doubled so no explicit mod 255.
  }

  /// Multiplicative inverse. `a` must be non-zero.
  static std::uint8_t Inv(std::uint8_t a);

  /// Field division a / b. `b` must be non-zero.
  static std::uint8_t Div(std::uint8_t a, std::uint8_t b);

  /// a raised to the integer power e (e >= 0); Pow(0, 0) == 1.
  static std::uint8_t Pow(std::uint8_t a, unsigned e);

  /// Slow bitwise ("Russian peasant") multiplication; reference
  /// implementation used to validate the tables in tests.
  static std::uint8_t MulSlow(std::uint8_t a, std::uint8_t b);

 private:
  struct Tables {
    // exp[i] = g^i for i in [0, 510), doubled to avoid a mod in Mul.
    std::array<std::uint8_t, 510> exp;
    // log[a] = discrete log of a (log[0] unused).
    std::array<std::uint16_t, 256> log;
  };

  static const Tables& tables();
};

}  // namespace bdisk::gf

#endif  // BDISK_GF_GF256_H_
