#include "gf/matrix.h"

#include <sstream>

#include "common/check.h"
#include "gf/gf_bulk.h"

namespace bdisk::gf {

Result<Matrix> Matrix::FromRowMajor(std::size_t rows, std::size_t cols,
                                    std::vector<std::uint8_t> data) {
  if (data.size() != rows * cols) {
    return Status::InvalidArgument("FromRowMajor: data size " +
                                   std::to_string(data.size()) +
                                   " != " + std::to_string(rows * cols));
  }
  Matrix m(rows, cols);
  m.data_ = std::move(data);
  return m;
}

Matrix Matrix::Identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.Set(i, i, 1);
  return m;
}

Result<Matrix> Matrix::Vandermonde(std::size_t rows, std::size_t cols) {
  if (rows > 255) {
    return Status::InvalidArgument(
        "Vandermonde: at most 255 rows over GF(2^8), got " +
        std::to_string(rows));
  }
  if (cols > rows) {
    return Status::InvalidArgument("Vandermonde: cols > rows");
  }
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    const auto x = static_cast<std::uint8_t>(i + 1);  // Distinct, non-zero.
    std::uint8_t p = 1;
    for (std::size_t j = 0; j < cols; ++j) {
      m.Set(i, j, p);
      p = GF256::Mul(p, x);
    }
  }
  return m;
}

Result<Matrix> Matrix::Cauchy(std::size_t rows, std::size_t cols) {
  if (rows + cols > 256) {
    return Status::InvalidArgument(
        "Cauchy: rows + cols must be <= 256 over GF(2^8)");
  }
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      // x_i = i, y_j = rows + j; all 256 values distinct, so x_i + y_j != 0.
      const std::uint8_t denom = GF256::Add(static_cast<std::uint8_t>(i),
                                            static_cast<std::uint8_t>(rows + j));
      m.Set(i, j, GF256::Inv(denom));
    }
  }
  return m;
}

Result<Matrix> Matrix::SystematicCauchy(std::size_t rows, std::size_t cols) {
  if (rows < cols) {
    return Status::InvalidArgument("SystematicCauchy: rows < cols");
  }
  const std::size_t parity_rows = rows - cols;
  if (parity_rows + cols > 256) {
    return Status::InvalidArgument(
        "SystematicCauchy: too many rows for GF(2^8)");
  }
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < cols; ++i) m.Set(i, i, 1);
  if (parity_rows > 0) {
    BDISK_ASSIGN_OR_RETURN(Matrix cauchy, Cauchy(parity_rows, cols));
    for (std::size_t i = 0; i < parity_rows; ++i) {
      for (std::size_t j = 0; j < cols; ++j) {
        m.Set(cols + i, j, cauchy.At(i, j));
      }
    }
  }
  return m;
}

std::uint8_t Matrix::At(std::size_t r, std::size_t c) const {
  BDISK_DCHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

void Matrix::Set(std::size_t r, std::size_t c, std::uint8_t v) {
  BDISK_DCHECK(r < rows_ && c < cols_);
  data_[r * cols_ + c] = v;
}

const std::uint8_t* Matrix::RowData(std::size_t r) const {
  BDISK_DCHECK(r < rows_);
  return data_.data() + r * cols_;
}

std::uint8_t* Matrix::MutableRowData(std::size_t r) {
  BDISK_DCHECK(r < rows_);
  return data_.data() + r * cols_;
}

Result<Matrix> Matrix::Mul(const Matrix& other) const {
  if (cols_ != other.rows_) {
    return Status::InvalidArgument("Matrix::Mul: shape mismatch " +
                                   std::to_string(cols_) + " vs " +
                                   std::to_string(other.rows_));
  }
  Matrix out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const std::uint8_t a = At(i, k);
      if (a == 0) continue;
      for (std::size_t j = 0; j < other.cols_; ++j) {
        out.data_[i * other.cols_ + j] = GF256::Add(
            out.data_[i * other.cols_ + j], GF256::Mul(a, other.At(k, j)));
      }
    }
  }
  return out;
}

Result<std::vector<std::uint8_t>> Matrix::MulVector(
    const std::vector<std::uint8_t>& v) const {
  if (v.size() != cols_) {
    return Status::InvalidArgument("MulVector: vector size mismatch");
  }
  std::vector<std::uint8_t> out(rows_, 0);
  for (std::size_t i = 0; i < rows_; ++i) {
    std::uint8_t acc = 0;
    const std::uint8_t* row = RowData(i);
    for (std::size_t j = 0; j < cols_; ++j) {
      acc = GF256::Add(acc, GF256::Mul(row[j], v[j]));
    }
    out[i] = acc;
  }
  return out;
}

Result<Matrix> Matrix::Inverse() const {
  if (rows_ != cols_) {
    return Status::InvalidArgument("Inverse: matrix is not square");
  }
  const std::size_t n = rows_;
  Matrix a = *this;
  Matrix inv = Identity(n);
  for (std::size_t col = 0; col < n; ++col) {
    // Find a pivot.
    std::size_t pivot = col;
    while (pivot < n && a.At(pivot, col) == 0) ++pivot;
    if (pivot == n) {
      return Status::Infeasible("Inverse: singular matrix");
    }
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(a.data_[pivot * n + j], a.data_[col * n + j]);
        std::swap(inv.data_[pivot * n + j], inv.data_[col * n + j]);
      }
    }
    // Normalize the pivot row.
    const std::uint8_t p_inv = GF256::Inv(a.At(col, col));
    GFBulk::MulRow(a.MutableRowData(col), a.RowData(col), p_inv, n);
    GFBulk::MulRow(inv.MutableRowData(col), inv.RowData(col), p_inv, n);
    // Eliminate the column everywhere else.
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const std::uint8_t f = a.At(r, col);
      GFBulk::MulRowAccumulate(a.MutableRowData(r), a.RowData(col), f, n);
      GFBulk::MulRowAccumulate(inv.MutableRowData(r), inv.RowData(col), f, n);
    }
  }
  return inv;
}

std::size_t Matrix::Rank() const {
  Matrix a = *this;
  std::size_t rank = 0;
  for (std::size_t col = 0; col < cols_ && rank < rows_; ++col) {
    std::size_t pivot = rank;
    while (pivot < rows_ && a.At(pivot, col) == 0) ++pivot;
    if (pivot == rows_) continue;
    if (pivot != rank) {
      for (std::size_t j = 0; j < cols_; ++j) {
        std::swap(a.data_[pivot * cols_ + j], a.data_[rank * cols_ + j]);
      }
    }
    const std::uint8_t p_inv = GF256::Inv(a.At(rank, col));
    GFBulk::MulRow(a.MutableRowData(rank), a.RowData(rank), p_inv, cols_);
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r == rank) continue;
      GFBulk::MulRowAccumulate(a.MutableRowData(r), a.RowData(rank),
                               a.At(r, col), cols_);
    }
    ++rank;
  }
  return rank;
}

Result<Matrix> Matrix::SelectRows(
    const std::vector<std::size_t>& row_indices) const {
  Matrix out(row_indices.size(), cols_);
  for (std::size_t i = 0; i < row_indices.size(); ++i) {
    if (row_indices[i] >= rows_) {
      return Status::InvalidArgument("SelectRows: index out of range");
    }
    for (std::size_t j = 0; j < cols_; ++j) {
      out.Set(i, j, At(row_indices[i], j));
    }
  }
  return out;
}

bool Matrix::Equals(const Matrix& other) const {
  return rows_ == other.rows_ && cols_ == other.cols_ && data_ == other.data_;
}

std::string Matrix::ToString() const {
  static const char* kHex = "0123456789abcdef";
  std::ostringstream oss;
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) {
      const std::uint8_t v = At(i, j);
      if (j > 0) oss << ' ';
      oss << kHex[v >> 4] << kHex[v & 0xF];
    }
    oss << '\n';
  }
  return oss.str();
}

}  // namespace bdisk::gf
