/// \file matrix.h
/// \brief Dense matrices over GF(2^8), with the operations IDA needs:
/// multiplication, Gaussian-elimination inversion, row selection, and
/// Vandermonde / Cauchy constructions whose every m-row subset is invertible.
///
/// Row-wide elimination steps (Inverse, Rank) run on the dispatched bulk
/// kernels (gf/gf_bulk.h), so they ride the same SIMD paths as the codec.

#ifndef BDISK_GF_MATRIX_H_
#define BDISK_GF_MATRIX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "gf/gf256.h"

namespace bdisk::gf {

/// \brief A rows x cols matrix of GF(2^8) elements, row-major.
class Matrix {
 public:
  /// Creates a zero matrix of the given shape (either dimension may be 0).
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0) {}

  /// Creates a matrix from row-major initializer data. `data.size()` must be
  /// rows * cols.
  static Result<Matrix> FromRowMajor(std::size_t rows, std::size_t cols,
                                     std::vector<std::uint8_t> data);

  /// The n x n identity matrix.
  static Matrix Identity(std::size_t n);

  /// \brief Vandermonde matrix V[i][j] = x_i^j with distinct evaluation
  /// points x_i = i + 1 (i in [0, rows)), rows <= 255, cols <= rows... any
  /// `cols` rows of it are linearly independent because the points are
  /// distinct and non-zero.
  ///
  /// Fails if rows > 255 (GF(2^8) has only 255 distinct non-zero points).
  static Result<Matrix> Vandermonde(std::size_t rows, std::size_t cols);

  /// \brief Cauchy matrix C[i][j] = 1 / (x_i + y_j) with x_i = i and
  /// y_j = rows + j, all distinct; every square submatrix is invertible.
  ///
  /// Fails if rows + cols > 256.
  static Result<Matrix> Cauchy(std::size_t rows, std::size_t cols);

  /// \brief Systematic dispersal matrix: the top `cols` rows are the
  /// identity, the remaining rows are Cauchy. Any `cols` rows are
  /// independent. Fails if rows - cols + cols... i.e. rows > 256 - cols.
  static Result<Matrix> SystematicCauchy(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// Element access (bounds-checked in debug builds).
  std::uint8_t At(std::size_t r, std::size_t c) const;
  /// Mutable element access.
  void Set(std::size_t r, std::size_t c, std::uint8_t v);

  /// Pointer to the start of row `r` (row-major contiguous storage).
  const std::uint8_t* RowData(std::size_t r) const;
  /// Mutable pointer to the start of row `r`.
  std::uint8_t* MutableRowData(std::size_t r);

  /// Matrix product this * other. Fails on shape mismatch.
  Result<Matrix> Mul(const Matrix& other) const;

  /// Matrix-vector product this * v (v.size() must equal cols()).
  Result<std::vector<std::uint8_t>> MulVector(
      const std::vector<std::uint8_t>& v) const;

  /// Inverse via Gauss–Jordan elimination. Fails with Infeasible if the
  /// matrix is singular or non-square.
  Result<Matrix> Inverse() const;

  /// Rank via Gaussian elimination (destructive on a copy).
  std::size_t Rank() const;

  /// The square matrix formed by the given rows (in the given order).
  /// Fails if any index is out of range.
  Result<Matrix> SelectRows(const std::vector<std::size_t>& row_indices) const;

  /// True iff every element equals the corresponding element of `other`.
  bool Equals(const Matrix& other) const;

  /// Hex dump, one row per line (for debugging and golden tests).
  std::string ToString() const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<std::uint8_t> data_;
};

}  // namespace bdisk::gf

#endif  // BDISK_GF_MATRIX_H_
