#include "gf/gf_bulk.h"

#include <array>
#include <cstring>

#include "gf/gf256.h"

namespace bdisk::gf {

namespace {

// The full product table: kProducts[c][x] == c * x in GF(2^8). 64 KiB total;
// any one row (256 B, four cache lines) stays L1-resident across a block.
struct ProductTable {
  std::array<std::array<std::uint8_t, 256>, 256> rows;
};

const ProductTable& Products() {
  static const ProductTable kProducts = [] {
    ProductTable t{};
    for (unsigned c = 0; c < 256; ++c) {
      for (unsigned x = 0; x < 256; ++x) {
        t.rows[c][x] = GF256::Mul(static_cast<std::uint8_t>(c),
                                  static_cast<std::uint8_t>(x));
      }
    }
    return t;
  }();
  return kProducts;
}

}  // namespace

const std::uint8_t* GFBulk::MulTable(std::uint8_t coeff) {
  return Products().rows[coeff].data();
}

void GFBulk::XorRow(std::uint8_t* dst, const std::uint8_t* src,
                    std::size_t n) {
  std::size_t i = 0;
  // Word-wide main loop; memcpy keeps it alias- and alignment-safe and
  // compiles to plain 64-bit loads/stores.
  for (; i + sizeof(std::uint64_t) <= n; i += sizeof(std::uint64_t)) {
    std::uint64_t a;
    std::uint64_t b;
    std::memcpy(&a, dst + i, sizeof(a));
    std::memcpy(&b, src + i, sizeof(b));
    a ^= b;
    std::memcpy(dst + i, &a, sizeof(a));
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

void GFBulk::MulRow(std::uint8_t* dst, const std::uint8_t* src,
                    std::uint8_t coeff, std::size_t n) {
  if (coeff == 0) {
    std::memset(dst, 0, n);
    return;
  }
  if (coeff == 1) {
    if (dst != src) std::memmove(dst, src, n);
    return;
  }
  const std::uint8_t* const table = MulTable(coeff);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    dst[i] = table[src[i]];
    dst[i + 1] = table[src[i + 1]];
    dst[i + 2] = table[src[i + 2]];
    dst[i + 3] = table[src[i + 3]];
  }
  for (; i < n; ++i) dst[i] = table[src[i]];
}

void GFBulk::MulRowAccumulate(std::uint8_t* dst, const std::uint8_t* src,
                              std::uint8_t coeff, std::size_t n) {
  if (coeff == 0) return;
  if (coeff == 1) {
    XorRow(dst, src, n);
    return;
  }
  const std::uint8_t* const table = MulTable(coeff);
  std::size_t i = 0;
  // Unrolled by 4: the four independent lookup/XOR chains pipeline well and
  // give the compiler room to keep table loads in flight.
  for (; i + 4 <= n; i += 4) {
    dst[i] ^= table[src[i]];
    dst[i + 1] ^= table[src[i + 1]];
    dst[i + 2] ^= table[src[i + 2]];
    dst[i + 3] ^= table[src[i + 3]];
  }
  for (; i < n; ++i) dst[i] ^= table[src[i]];
}

}  // namespace bdisk::gf
