/// \file gf_bulk.cc
/// \brief Shared kernel tables, the portable "generic" implementation, and
/// the dispatched GFBulk entry points.

#include "gf/gf_bulk.h"

#include <algorithm>
#include <array>
#include <cstring>

#include "gf/gf256.h"
#include "gf/gf_dispatch.h"
#include "gf/gf_kernels.h"

namespace bdisk::gf {

namespace {

// The full product table: kProducts[c][x] == c * x in GF(2^8). 64 KiB total;
// any one row (256 B, four cache lines) stays L1-resident across a block.
struct ProductTable {
  std::array<std::array<std::uint8_t, 256>, 256> rows;
};

const ProductTable& Products() {
  static const ProductTable kProducts = [] {
    ProductTable t{};
    for (unsigned c = 0; c < 256; ++c) {
      for (unsigned x = 0; x < 256; ++x) {
        t.rows[c][x] = GF256::Mul(static_cast<std::uint8_t>(c),
                                  static_cast<std::uint8_t>(x));
      }
    }
    return t;
  }();
  return kProducts;
}

// ---------------------------------------------------------------------------
// Generic (portable scalar) kernels — the PR 1 table kernels, unchanged in
// behavior; every other implementation must match them byte-for-byte.
// ---------------------------------------------------------------------------

void GenericXorRow(std::uint8_t* dst, const std::uint8_t* src, std::size_t n) {
  std::size_t i = 0;
  // Word-wide main loop; memcpy keeps it alias- and alignment-safe and
  // compiles to plain 64-bit loads/stores.
  for (; i + sizeof(std::uint64_t) <= n; i += sizeof(std::uint64_t)) {
    std::uint64_t a;
    std::uint64_t b;
    std::memcpy(&a, dst + i, sizeof(a));
    std::memcpy(&b, src + i, sizeof(b));
    a ^= b;
    std::memcpy(dst + i, &a, sizeof(a));
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

void GenericMulRow(std::uint8_t* dst, const std::uint8_t* src,
                   std::uint8_t coeff, std::size_t n) {
  if (coeff == 0) {
    std::memset(dst, 0, n);
    return;
  }
  if (coeff == 1) {
    if (dst != src) std::memmove(dst, src, n);
    return;
  }
  const std::uint8_t* const table = Products().rows[coeff].data();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    dst[i] = table[src[i]];
    dst[i + 1] = table[src[i + 1]];
    dst[i + 2] = table[src[i + 2]];
    dst[i + 3] = table[src[i + 3]];
  }
  for (; i < n; ++i) dst[i] = table[src[i]];
}

void GenericMulRowAccumulate(std::uint8_t* dst, const std::uint8_t* src,
                             std::uint8_t coeff, std::size_t n) {
  if (coeff == 0) return;
  if (coeff == 1) {
    GenericXorRow(dst, src, n);
    return;
  }
  const std::uint8_t* const table = Products().rows[coeff].data();
  std::size_t i = 0;
  // Unrolled by 4: the four independent lookup/XOR chains pipeline well and
  // give the compiler room to keep table loads in flight.
  for (; i + 4 <= n; i += 4) {
    dst[i] ^= table[src[i]];
    dst[i + 1] ^= table[src[i + 1]];
    dst[i + 2] ^= table[src[i + 2]];
    dst[i + 3] ^= table[src[i + 3]];
  }
  for (; i < n; ++i) dst[i] ^= table[src[i]];
}

void GenericMatrixMulAccumulate(std::uint8_t* const* dsts,
                                const std::uint8_t* const* srcs,
                                const std::uint8_t* const* coeffs,
                                std::size_t n_dst, std::size_t n_src,
                                std::size_t block_size) {
  // Position tiling only: within a tile every source slice is touched once
  // per destination, but the tile working set (n_src + 1 slices of at most
  // kMatrixTileBytes) stays cache-resident, so only the first round streams
  // from memory.
  for (std::size_t pos = 0; pos < block_size;
       pos += internal::kMatrixTileBytes) {
    const std::size_t len =
        std::min(internal::kMatrixTileBytes, block_size - pos);
    for (std::size_t i = 0; i < n_dst; ++i) {
      std::uint8_t* const dst = dsts[i] + pos;
      const std::uint8_t* const row = coeffs[i];
      for (std::size_t j = 0; j < n_src; ++j) {
        GenericMulRowAccumulate(dst, srcs[j] + pos, row[j], len);
      }
    }
  }
}

}  // namespace

namespace internal {

const NibbleTables& GetNibbleTables() {
  static const NibbleTables kTables = [] {
    NibbleTables t{};
    for (unsigned c = 0; c < 256; ++c) {
      for (unsigned x = 0; x < 16; ++x) {
        t.lo[c][x] = GF256::Mul(static_cast<std::uint8_t>(c),
                                static_cast<std::uint8_t>(x));
        t.hi[c][x] = GF256::Mul(static_cast<std::uint8_t>(c),
                                static_cast<std::uint8_t>(x << 4));
      }
    }
    return t;
  }();
  return kTables;
}

const KernelTable* GenericKernels() {
  static constexpr KernelTable kTable = {
      "generic",        GenericXorRow,
      GenericMulRow,    GenericMulRowAccumulate,
      GenericMatrixMulAccumulate,
  };
  return &kTable;
}

}  // namespace internal

// ---------------------------------------------------------------------------
// Dispatched public entry points.
// ---------------------------------------------------------------------------

const std::uint8_t* GFBulk::MulTable(std::uint8_t coeff) {
  return Products().rows[coeff].data();
}

void GFBulk::XorRow(std::uint8_t* dst, const std::uint8_t* src,
                    std::size_t n) {
  Dispatch::Active().xor_row(dst, src, n);
}

void GFBulk::MulRow(std::uint8_t* dst, const std::uint8_t* src,
                    std::uint8_t coeff, std::size_t n) {
  Dispatch::Active().mul_row(dst, src, coeff, n);
}

void GFBulk::MulRowAccumulate(std::uint8_t* dst, const std::uint8_t* src,
                              std::uint8_t coeff, std::size_t n) {
  Dispatch::Active().mul_row_accumulate(dst, src, coeff, n);
}

void GFBulk::MatrixMulAccumulate(std::uint8_t* const* dsts,
                                 const std::uint8_t* const* srcs,
                                 const std::uint8_t* const* coeffs,
                                 std::size_t n_dst, std::size_t n_src,
                                 std::size_t block_size) {
  Dispatch::Active().matrix_mul_accumulate(dsts, srcs, coeffs, n_dst, n_src,
                                           block_size);
}

}  // namespace bdisk::gf
