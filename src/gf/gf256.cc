#include "gf/gf256.h"

#include "common/check.h"

namespace bdisk::gf {

const GF256::Tables& GF256::tables() {
  static const Tables kTables = [] {
    Tables t{};
    std::uint16_t x = 1;
    for (unsigned i = 0; i < 255; ++i) {
      t.exp[i] = static_cast<std::uint8_t>(x);
      t.log[x] = static_cast<std::uint16_t>(i);
      // x *= generator. With generator 3 = x + 1: x*3 = (x*2) xor x.
      std::uint16_t x2 = static_cast<std::uint16_t>(x << 1);
      if (x2 & 0x100) x2 ^= kPolynomial;
      x = static_cast<std::uint16_t>(x2 ^ x);
    }
    for (unsigned i = 255; i < 510; ++i) {
      t.exp[i] = t.exp[i - 255];
    }
    t.log[0] = 0;  // Unused sentinel; Mul/Div guard against zero operands.
    return t;
  }();
  return kTables;
}

std::uint8_t GF256::Inv(std::uint8_t a) {
  BDISK_CHECK(a != 0);
  return tables().exp[255 - tables().log[a]];
}

std::uint8_t GF256::Div(std::uint8_t a, std::uint8_t b) {
  BDISK_CHECK(b != 0);
  if (a == 0) return 0;
  // 255 + log(a) - log(b) lies in [1, 509]; the doubled exp table covers it.
  const unsigned s = 255u + tables().log[a] - tables().log[b];
  return tables().exp[s];
}

std::uint8_t GF256::Pow(std::uint8_t a, unsigned e) {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const unsigned l = (static_cast<unsigned>(tables().log[a]) * e) % 255;
  return tables().exp[l];
}

std::uint8_t GF256::MulSlow(std::uint8_t a, std::uint8_t b) {
  std::uint16_t acc = 0;
  std::uint16_t aa = a;
  std::uint8_t bb = b;
  while (bb != 0) {
    if (bb & 1) acc ^= aa;
    aa = static_cast<std::uint16_t>(aa << 1);
    if (aa & 0x100) aa ^= kPolynomial;
    bb >>= 1;
  }
  return static_cast<std::uint8_t>(acc);
}

}  // namespace bdisk::gf
