/// \file gf_simd_avx2.cc
/// \brief AVX2 (VPSHUFB) GF(2^8) kernels — 32 bytes per shuffle pair.
///
/// Compiled with -mavx2 on x86 (per-file flag; see CMakeLists.txt), reached
/// only through gf::Dispatch after a CPUID probe. Identical structure to the
/// SSSE3 kernels with the 16-byte nibble tables broadcast to both 128-bit
/// lanes: VPSHUFB shuffles within each lane, so a broadcast table applies
/// the same 16-entry lookup to all 32 bytes.

#include "gf/gf_kernels.h"

#if (defined(__x86_64__) || defined(__i386__)) && defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>
#include <cstring>

namespace bdisk::gf::internal {

namespace {

inline __m256i LoadU(const std::uint8_t* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

inline void StoreU(std::uint8_t* p, __m256i v) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}

/// The 16-byte nibble table for `c`, broadcast to both lanes.
inline __m256i BroadcastTable(const std::uint8_t (&table)[16]) {
  return _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(table)));
}

inline __m256i MulVec(__m256i v, __m256i tlo, __m256i thi, __m256i mask) {
  const __m256i lo = _mm256_and_si256(v, mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi64(v, 4), mask);
  return _mm256_xor_si256(_mm256_shuffle_epi8(tlo, lo),
                          _mm256_shuffle_epi8(thi, hi));
}

inline std::uint8_t MulByte(const NibbleTables& t, std::uint8_t c,
                            std::uint8_t b) {
  return static_cast<std::uint8_t>(t.lo[c][b & 0x0F] ^ t.hi[c][b >> 4]);
}

void Avx2XorRow(std::uint8_t* dst, const std::uint8_t* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    StoreU(dst + i, _mm256_xor_si256(LoadU(dst + i), LoadU(src + i)));
    StoreU(dst + i + 32,
           _mm256_xor_si256(LoadU(dst + i + 32), LoadU(src + i + 32)));
  }
  for (; i + 32 <= n; i += 32) {
    StoreU(dst + i, _mm256_xor_si256(LoadU(dst + i), LoadU(src + i)));
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

void Avx2MulRow(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t coeff,
                std::size_t n) {
  if (coeff == 0) {
    std::memset(dst, 0, n);
    return;
  }
  if (coeff == 1) {
    if (dst != src) std::memmove(dst, src, n);
    return;
  }
  const NibbleTables& t = GetNibbleTables();
  const __m256i tlo = BroadcastTable(t.lo[coeff]);
  const __m256i thi = BroadcastTable(t.hi[coeff]);
  const __m256i mask = _mm256_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    StoreU(dst + i, MulVec(LoadU(src + i), tlo, thi, mask));
    StoreU(dst + i + 32, MulVec(LoadU(src + i + 32), tlo, thi, mask));
  }
  for (; i + 32 <= n; i += 32) {
    StoreU(dst + i, MulVec(LoadU(src + i), tlo, thi, mask));
  }
  for (; i < n; ++i) dst[i] = MulByte(t, coeff, src[i]);
}

void Avx2MulRowAccumulate(std::uint8_t* dst, const std::uint8_t* src,
                          std::uint8_t coeff, std::size_t n) {
  if (coeff == 0) return;
  if (coeff == 1) {
    Avx2XorRow(dst, src, n);
    return;
  }
  const NibbleTables& t = GetNibbleTables();
  const __m256i tlo = BroadcastTable(t.lo[coeff]);
  const __m256i thi = BroadcastTable(t.hi[coeff]);
  const __m256i mask = _mm256_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    StoreU(dst + i, _mm256_xor_si256(LoadU(dst + i),
                                     MulVec(LoadU(src + i), tlo, thi, mask)));
    StoreU(dst + i + 32,
           _mm256_xor_si256(LoadU(dst + i + 32),
                            MulVec(LoadU(src + i + 32), tlo, thi, mask)));
  }
  for (; i + 32 <= n; i += 32) {
    StoreU(dst + i, _mm256_xor_si256(LoadU(dst + i),
                                     MulVec(LoadU(src + i), tlo, thi, mask)));
  }
  for (; i < n; ++i) dst[i] ^= MulByte(t, coeff, src[i]);
}

// Terms of one destination row, split by fast path and hoisted out of the
// chunk loop: coeff==1 sources XOR straight into the accumulators; general
// coefficients carry their nibble tables pre-broadcast, so the inner loop
// is branch-free with no table setup.
struct XorTerm {
  const std::uint8_t* src;
};
struct MulTerm {
  const std::uint8_t* src;
  std::uint8_t coeff;
  __m256i tlo;
  __m256i thi;
};

// Sources are processed in groups so the term arrays have a fixed stack
// bound; IDA geometry never exceeds 256 sources, so one group is the norm.
constexpr std::size_t kMaxTerms = 256;

void Avx2MatrixMulAccumulate(std::uint8_t* const* dsts,
                             const std::uint8_t* const* srcs,
                             const std::uint8_t* const* coeffs,
                             std::size_t n_dst, std::size_t n_src,
                             std::size_t block_size) {
  const NibbleTables& t = GetNibbleTables();
  const __m256i mask = _mm256_set1_epi8(0x0F);
  XorTerm xterms[kMaxTerms];
  MulTerm mterms[kMaxTerms];
  for (std::size_t pos = 0; pos < block_size; pos += kMatrixTileBytes) {
    const std::size_t len = std::min(kMatrixTileBytes, block_size - pos);
    for (std::size_t i = 0; i < n_dst; ++i) {
      std::uint8_t* const dst = dsts[i] + pos;
      const std::uint8_t* const row = coeffs[i];
      for (std::size_t j0 = 0; j0 < n_src; j0 += kMaxTerms) {
        const std::size_t jn = std::min(n_src - j0, kMaxTerms);
        std::size_t nx = 0;
        std::size_t nm = 0;
        for (std::size_t j = 0; j < jn; ++j) {
          const std::uint8_t c = row[j0 + j];
          if (c == 0) continue;
          const std::uint8_t* const s = srcs[j0 + j] + pos;
          if (c == 1) {
            xterms[nx++] = XorTerm{s};
          } else {
            mterms[nm++] =
                MulTerm{s, c, BroadcastTable(t.lo[c]), BroadcastTable(t.hi[c])};
          }
        }
        if (nx == 0 && nm == 0) continue;
        std::size_t k = 0;
        // Accumulators live in registers across the whole source loop: each
        // destination chunk is loaded and stored once per tile, not once
        // per source, and source tiles stay L1-resident across
        // destinations. 128 bytes per round — four independent accumulator
        // chains keep the shuffle and load ports saturated.
        for (; k + 128 <= len; k += 128) {
          __m256i acc0 = LoadU(dst + k);
          __m256i acc1 = LoadU(dst + k + 32);
          __m256i acc2 = LoadU(dst + k + 64);
          __m256i acc3 = LoadU(dst + k + 96);
          for (std::size_t x = 0; x < nx; ++x) {
            const std::uint8_t* const s = xterms[x].src + k;
            acc0 = _mm256_xor_si256(acc0, LoadU(s));
            acc1 = _mm256_xor_si256(acc1, LoadU(s + 32));
            acc2 = _mm256_xor_si256(acc2, LoadU(s + 64));
            acc3 = _mm256_xor_si256(acc3, LoadU(s + 96));
          }
          for (std::size_t m = 0; m < nm; ++m) {
            const MulTerm& term = mterms[m];
            const std::uint8_t* const s = term.src + k;
            acc0 = _mm256_xor_si256(acc0,
                                    MulVec(LoadU(s), term.tlo, term.thi, mask));
            acc1 = _mm256_xor_si256(
                acc1, MulVec(LoadU(s + 32), term.tlo, term.thi, mask));
            acc2 = _mm256_xor_si256(
                acc2, MulVec(LoadU(s + 64), term.tlo, term.thi, mask));
            acc3 = _mm256_xor_si256(
                acc3, MulVec(LoadU(s + 96), term.tlo, term.thi, mask));
          }
          StoreU(dst + k, acc0);
          StoreU(dst + k + 32, acc1);
          StoreU(dst + k + 64, acc2);
          StoreU(dst + k + 96, acc3);
        }
        for (; k + 32 <= len; k += 32) {
          __m256i acc = LoadU(dst + k);
          for (std::size_t x = 0; x < nx; ++x) {
            acc = _mm256_xor_si256(acc, LoadU(xterms[x].src + k));
          }
          for (std::size_t m = 0; m < nm; ++m) {
            const MulTerm& term = mterms[m];
            acc = _mm256_xor_si256(
                acc, MulVec(LoadU(term.src + k), term.tlo, term.thi, mask));
          }
          StoreU(dst + k, acc);
        }
        for (; k < len; ++k) {
          std::uint8_t b = dst[k];
          for (std::size_t x = 0; x < nx; ++x) b ^= xterms[x].src[k];
          for (std::size_t m = 0; m < nm; ++m) {
            b ^= MulByte(t, mterms[m].coeff, mterms[m].src[k]);
          }
          dst[k] = b;
        }
      }
    }
  }
}

}  // namespace

const KernelTable* Avx2Kernels() {
  static constexpr KernelTable kTable = {
      "avx2",      Avx2XorRow,
      Avx2MulRow,  Avx2MulRowAccumulate,
      Avx2MatrixMulAccumulate,
  };
  return &kTable;
}

}  // namespace bdisk::gf::internal

#else  // !x86 or no -mavx2: register nothing.

namespace bdisk::gf::internal {
const KernelTable* Avx2Kernels() { return nullptr; }
}  // namespace bdisk::gf::internal

#endif
