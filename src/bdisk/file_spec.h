/// \file file_spec.h
/// \brief Broadcast-file specifications (paper, Sections 3.2 and 4.1).
///
/// Two levels of generality:
/// * FileSpec — "regular" fault-tolerant real-time file: size m_i (blocks),
///   latency T_i (seconds), fault tolerance r_i. At bandwidth B blocks/sec
///   this induces the pinwheel task (i, m_i + r_i, floor(B * T_i)).
/// * GeneralizedFileSpec — Section 4's model: size m_i plus a latency
///   vector d⃗_i in block-slots; d^(j) bounds the tolerable latency when j
///   faults occur. Regular specs embed by setting every d^(j) equal.

#ifndef BDISK_BDISK_FILE_SPEC_H_
#define BDISK_BDISK_FILE_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "algebra/condition.h"
#include "common/status.h"

namespace bdisk::broadcast {

/// \brief Regular fault-tolerant real-time broadcast file (Section 3.2).
struct FileSpec {
  /// Human-readable name ("aircraft-positions").
  std::string name;
  /// Size m_i in blocks (reconstruction threshold under IDA).
  std::uint64_t size_blocks = 1;
  /// Latency constraint T_i in seconds: every client must be able to
  /// collect the file within T_i, regardless of when it starts listening.
  double latency_seconds = 1.0;
  /// Number of block-loss faults r_i to tolerate within one retrieval.
  std::uint64_t fault_tolerance = 0;

  /// Validates size >= 1 and latency > 0.
  Status Validate() const;

  /// Blocks/sec this file alone contributes to the bandwidth lower bound:
  /// (m_i + r_i) / T_i.
  double DemandBlocksPerSecond() const;

  /// The broadcast condition at integer bandwidth B blocks/sec: all
  /// latencies equal floor(B * T_i). Fails if that window cannot hold
  /// m_i + r_i blocks.
  Result<algebra::BroadcastCondition> ToBroadcastCondition(
      std::uint64_t bandwidth_blocks_per_second) const;
};

/// \brief Generalized fault-tolerant real-time broadcast file (Section 4.1).
struct GeneralizedFileSpec {
  std::string name;
  /// Size m_i in blocks.
  std::uint64_t size_blocks = 1;
  /// Latency vector in slots: latency_slots[j] = d^(j), j = 0..r_i.
  std::vector<std::uint64_t> latency_slots;

  /// Validates via the underlying broadcast condition.
  Status Validate() const;

  /// Fault tolerance r_i.
  std::uint64_t fault_tolerance() const {
    return latency_slots.empty() ? 0 : latency_slots.size() - 1;
  }

  /// The bc(m_i, d⃗_i) condition.
  algebra::BroadcastCondition ToBroadcastCondition() const;
};

}  // namespace bdisk::broadcast

#endif  // BDISK_BDISK_FILE_SPEC_H_
