#include "bdisk/spec_parser.h"

#include <charconv>
#include <sstream>
#include <unordered_set>

namespace bdisk::broadcast {

namespace {

Status LineError(int line_no, const std::string& message) {
  return Status::InvalidArgument("spec line " + std::to_string(line_no) +
                                 ": " + message);
}

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream iss(line);
  std::string token;
  while (iss >> token) {
    if (token[0] == '#') break;
    tokens.push_back(token);
  }
  return tokens;
}

/// Splits "key=value"; returns false if '=' is absent.
bool SplitKeyValue(const std::string& token, std::string* key,
                   std::string* value) {
  const std::size_t eq = token.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= token.size()) {
    return false;
  }
  *key = token.substr(0, eq);
  *value = token.substr(eq + 1);
  return true;
}

Result<std::uint64_t> ParseUint(const std::string& s, int line_no) {
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return LineError(line_no, "expected an unsigned integer, got '" + s + "'");
  }
  return value;
}

Result<double> ParseDouble(const std::string& s, int line_no) {
  try {
    std::size_t pos = 0;
    const double value = std::stod(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return value;
  } catch (...) {
    return LineError(line_no, "expected a number, got '" + s + "'");
  }
}

Result<std::vector<std::uint64_t>> ParseUintList(const std::string& s,
                                                 int line_no) {
  std::vector<std::uint64_t> out;
  std::string item;
  std::istringstream iss(s);
  while (std::getline(iss, item, ',')) {
    BDISK_ASSIGN_OR_RETURN(std::uint64_t v, ParseUint(item, line_no));
    out.push_back(v);
  }
  if (out.empty()) {
    return LineError(line_no, "expected a comma-separated list, got '" + s +
                                  "'");
  }
  return out;
}

}  // namespace

Result<WorkloadSpec> ParseWorkloadSpec(const std::string& text) {
  WorkloadSpec spec;
  std::unordered_set<std::string> names;
  std::istringstream stream(text);
  std::string line;
  int line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    const std::vector<std::string> tokens = Tokenize(line);
    if (tokens.empty()) continue;
    const std::string& directive = tokens[0];

    if (directive == "channel" || directive == "blocksize") {
      if (tokens.size() != 2) {
        return LineError(line_no, directive + " takes exactly one value");
      }
      BDISK_ASSIGN_OR_RETURN(std::uint64_t v, ParseUint(tokens[1], line_no));
      if (v == 0) return LineError(line_no, directive + " must be positive");
      (directive == "channel" ? spec.channel_bytes_per_second
                              : spec.block_size) = v;
      continue;
    }

    if (directive == "file") {
      if (tokens.size() < 2) return LineError(line_no, "file needs a name");
      ByteFileSpec f;
      f.name = tokens[1];
      if (!names.insert(f.name).second) {
        return LineError(line_no, "duplicate file name '" + f.name + "'");
      }
      bool have_bytes = false;
      bool have_latency = false;
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        std::string key;
        std::string value;
        if (!SplitKeyValue(tokens[i], &key, &value)) {
          return LineError(line_no, "expected key=value, got '" + tokens[i] +
                                        "'");
        }
        if (key == "bytes") {
          BDISK_ASSIGN_OR_RETURN(f.bytes, ParseUint(value, line_no));
          have_bytes = true;
        } else if (key == "latency") {
          BDISK_ASSIGN_OR_RETURN(f.latency_seconds,
                                 ParseDouble(value, line_no));
          have_latency = true;
        } else if (key == "faults") {
          BDISK_ASSIGN_OR_RETURN(f.fault_tolerance,
                                 ParseUint(value, line_no));
        } else {
          return LineError(line_no, "unknown file attribute '" + key + "'");
        }
      }
      if (!have_bytes || !have_latency) {
        return LineError(line_no, "file needs bytes= and latency=");
      }
      if (f.bytes == 0) {
        return LineError(line_no, "file '" + f.name +
                                      "' has zero length; bytes must be "
                                      "positive");
      }
      if (!(f.latency_seconds > 0.0)) {
        return LineError(line_no, "file '" + f.name +
                                      "' needs a positive latency");
      }
      spec.byte_files.push_back(std::move(f));
      continue;
    }

    if (directive == "gfile") {
      if (tokens.size() < 2) return LineError(line_no, "gfile needs a name");
      GeneralizedFileSpec f;
      f.name = tokens[1];
      if (!names.insert(f.name).second) {
        return LineError(line_no, "duplicate file name '" + f.name + "'");
      }
      bool have_blocks = false;
      bool have_latencies = false;
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        std::string key;
        std::string value;
        if (!SplitKeyValue(tokens[i], &key, &value)) {
          return LineError(line_no, "expected key=value, got '" + tokens[i] +
                                        "'");
        }
        if (key == "blocks") {
          BDISK_ASSIGN_OR_RETURN(f.size_blocks, ParseUint(value, line_no));
          have_blocks = true;
        } else if (key == "latencies") {
          BDISK_ASSIGN_OR_RETURN(f.latency_slots,
                                 ParseUintList(value, line_no));
          have_latencies = true;
        } else {
          return LineError(line_no, "unknown gfile attribute '" + key + "'");
        }
      }
      if (!have_blocks || !have_latencies) {
        return LineError(line_no, "gfile needs blocks= and latencies=");
      }
      if (f.size_blocks == 0) {
        return LineError(line_no, "gfile '" + f.name +
                                      "' has zero length; blocks must be "
                                      "positive");
      }
      for (std::uint64_t d : f.latency_slots) {
        if (d == 0) {
          return LineError(line_no, "gfile '" + f.name +
                                        "' has a zero latency bound");
        }
      }
      spec.generalized_files.push_back(std::move(f));
      continue;
    }

    return LineError(line_no, "unknown directive '" + directive + "'");
  }

  if (spec.byte_files.empty() && spec.generalized_files.empty()) {
    return Status::InvalidArgument("spec declares no files");
  }
  if (!spec.byte_files.empty() && !spec.generalized_files.empty()) {
    return Status::InvalidArgument(
        "spec mixes byte-domain 'file' and slot-domain 'gfile' entries; "
        "use one domain per spec");
  }
  if (!spec.byte_files.empty() && spec.channel_bytes_per_second == 0) {
    return Status::InvalidArgument(
        "byte-domain specs need a 'channel <bytes/sec>' line");
  }
  return spec;
}

}  // namespace bdisk::broadcast
