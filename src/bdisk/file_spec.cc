#include "bdisk/file_spec.h"

#include <cmath>

namespace bdisk::broadcast {

Status FileSpec::Validate() const {
  if (size_blocks == 0) {
    return Status::InvalidArgument("FileSpec '" + name +
                                   "': size must be positive");
  }
  if (!(latency_seconds > 0.0)) {
    return Status::InvalidArgument("FileSpec '" + name +
                                   "': latency must be positive");
  }
  return Status::OK();
}

double FileSpec::DemandBlocksPerSecond() const {
  return static_cast<double>(size_blocks + fault_tolerance) / latency_seconds;
}

Result<algebra::BroadcastCondition> FileSpec::ToBroadcastCondition(
    std::uint64_t bandwidth_blocks_per_second) const {
  BDISK_RETURN_NOT_OK(Validate());
  if (bandwidth_blocks_per_second == 0) {
    return Status::InvalidArgument("bandwidth must be positive");
  }
  const auto window = static_cast<std::uint64_t>(
      std::floor(static_cast<double>(bandwidth_blocks_per_second) *
                 latency_seconds));
  algebra::BroadcastCondition bc;
  bc.m = size_blocks;
  bc.d.assign(fault_tolerance + 1, window);
  Status st = bc.Validate();
  if (!st.ok()) {
    return Status::Infeasible(
        "FileSpec '" + name + "': window of " + std::to_string(window) +
        " slots at " + std::to_string(bandwidth_blocks_per_second) +
        " blocks/sec cannot hold " +
        std::to_string(size_blocks + fault_tolerance) + " blocks (" +
        st.message() + ")");
  }
  return bc;
}

Status GeneralizedFileSpec::Validate() const {
  if (size_blocks == 0) {
    return Status::InvalidArgument("GeneralizedFileSpec '" + name +
                                   "': size must be positive");
  }
  return ToBroadcastCondition().Validate().WithContext("GeneralizedFileSpec '" +
                                                       name + "'");
}

algebra::BroadcastCondition GeneralizedFileSpec::ToBroadcastCondition() const {
  algebra::BroadcastCondition bc;
  bc.m = size_blocks;
  bc.d = latency_slots;
  return bc;
}

}  // namespace bdisk::broadcast
