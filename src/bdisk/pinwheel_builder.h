/// \file pinwheel_builder.h
/// \brief End-to-end construction of real-time fault-tolerant broadcast
/// programs via pinwheel scheduling — the paper's main pipeline.
///
/// Regular files (Section 3.2):
///   FileSpec* --(bandwidth B)--> pinwheel tasks (i, m_i + r_i, B*T_i)
///   --> scheduler --> BroadcastProgram.
///
/// Generalized files (Section 4):
///   GeneralizedFileSpec* --> bc conditions --(NiceConverter)--> nice
///   pinwheel instance with virtual tasks --> scheduler --> slots mapped
///   back through map(i', i) --> BroadcastProgram.
///
/// The produced program rotates each file through n_i = m_i + r_i dispersed
/// blocks (AIDA), so any m_i + j transmissions within a window contain
/// m_i + j distinct blocks for j <= r_i, and the program provably satisfies
/// every bc condition (re-verified before returning).

#ifndef BDISK_BDISK_PINWHEEL_BUILDER_H_
#define BDISK_BDISK_PINWHEEL_BUILDER_H_

#include <cstdint>
#include <vector>

#include "algebra/optimizer.h"
#include "bdisk/file_spec.h"
#include "bdisk/program.h"
#include "common/status.h"
#include "pinwheel/scheduler.h"

namespace bdisk::broadcast {

/// \brief Result of building a program, with the planning artifacts.
struct BuildResult {
  BroadcastProgram program;
  /// The nice pinwheel instance that was scheduled.
  pinwheel::Instance instance;
  /// Density of that instance.
  double scheduled_density = 0.0;
  /// Per-file conversion details (generalized pipeline only).
  std::vector<algebra::Conversion> conversions;
};

/// \brief Builder options.
struct BuilderOptions {
  /// Extra dispersed blocks to rotate beyond m_i + r_i (more distinct
  /// blocks never hurt and help clients that miss more than r_i blocks).
  std::uint32_t extra_rotation = 0;
  /// Conversion search options (generalized pipeline).
  algebra::ConverterOptions converter;
};

/// \brief Builds a program for regular files at the given bandwidth.
///
/// `bandwidth_blocks_per_second` is typically BandwidthPlanner::
/// SufficientBandwidth(files); latencies are converted to slot windows at
/// that bandwidth.
Result<BuildResult> BuildProgram(const std::vector<FileSpec>& files,
                                 std::uint64_t bandwidth_blocks_per_second,
                                 const pinwheel::Scheduler& scheduler,
                                 const BuilderOptions& options = {});

/// \brief Builds a program for generalized files (latency vectors in slots).
Result<BuildResult> BuildGeneralizedProgram(
    const std::vector<GeneralizedFileSpec>& files,
    const pinwheel::Scheduler& scheduler, const BuilderOptions& options = {});

}  // namespace bdisk::broadcast

#endif  // BDISK_BDISK_PINWHEEL_BUILDER_H_
