#include "bdisk/indexing.h"

#include <algorithm>

#include "common/check.h"

namespace bdisk::broadcast {

Result<IndexedProgram> BuildIndexedProgram(const BroadcastProgram& base,
                                           const IndexingOptions& options) {
  if (options.replication == 0 || options.index_slots == 0) {
    return Status::InvalidArgument(
        "BuildIndexedProgram: replication and index_slots must be positive");
  }
  const std::uint64_t base_period = base.period();
  if (options.replication > base_period) {
    return Status::InvalidArgument(
        "BuildIndexedProgram: more index copies than base slots");
  }

  std::vector<ProgramFile> files = base.files();
  const auto index_file = static_cast<FileIndex>(files.size());
  ProgramFile index;
  index.name = "__index";
  index.m = static_cast<std::uint32_t>(options.index_slots);
  index.n = static_cast<std::uint32_t>(options.index_slots);
  files.push_back(std::move(index));

  // Insert an index segment before base positions floor(r * P / repl).
  std::vector<FileIndex> slots;
  slots.reserve(base_period +
                options.replication * options.index_slots);
  std::uint32_t next_replica = 0;
  for (std::uint64_t t = 0; t < base_period; ++t) {
    while (next_replica < options.replication &&
           t == (static_cast<std::uint64_t>(next_replica) * base_period) /
                    options.replication) {
      for (std::uint64_t k = 0; k < options.index_slots; ++k) {
        slots.push_back(index_file);
      }
      ++next_replica;
    }
    slots.push_back(base.slots()[t]);
  }

  BDISK_ASSIGN_OR_RETURN(
      BroadcastProgram program,
      BroadcastProgram::Create(std::move(files), std::move(slots)));
  return IndexedProgram{std::move(program), index_file, options};
}

Result<AccessCost> IndexedAccess(const IndexedProgram& indexed,
                                 FileIndex target, std::uint64_t start) {
  const BroadcastProgram& p = indexed.program;
  if (target >= p.file_count() || target == indexed.index_file) {
    return Status::InvalidArgument("IndexedAccess: bad target file");
  }
  AccessCost cost;
  // 1. Initial probe: one listened slot teaches the offset of the next
  //    index segment (every block carries it in the (1, m) scheme).
  cost.tuning_time += 1;

  // 2. Doze until the next *start* of an index segment (index block 0).
  std::uint64_t t = start;
  while (true) {
    const auto tx = p.TransmissionAt(t);
    if (tx.has_value() && tx->file == indexed.index_file &&
        tx->block_index == 0) {
      break;
    }
    ++t;
  }
  // 3. Read the index segment.
  cost.tuning_time += indexed.options.index_slots;
  t += indexed.options.index_slots;

  // 4. Doze; wake only for the target's transmissions until m distinct
  //    blocks are in hand.
  const ProgramFile& pf = p.files()[target];
  std::vector<bool> have(pf.n, false);
  std::uint32_t distinct = 0;
  for (;; ++t) {
    const auto tx = p.TransmissionAt(t);
    if (!tx.has_value() || tx->file != target) continue;
    cost.tuning_time += 1;
    if (!have[tx->block_index]) {
      have[tx->block_index] = true;
      ++distinct;
    }
    if (distinct >= pf.m) break;
  }
  cost.latency = t - start + 1;
  return cost;
}

Result<AccessCost> NonIndexedAccess(const BroadcastProgram& program,
                                    FileIndex target, std::uint64_t start) {
  if (target >= program.file_count()) {
    return Status::InvalidArgument("NonIndexedAccess: bad target file");
  }
  const ProgramFile& pf = program.files()[target];
  std::vector<bool> have(pf.n, false);
  std::uint32_t distinct = 0;
  std::uint64_t t = start;
  for (;; ++t) {
    const auto tx = program.TransmissionAt(t);
    if (!tx.has_value() || tx->file != target) continue;
    if (!have[tx->block_index]) {
      have[tx->block_index] = true;
      ++distinct;
    }
    if (distinct >= pf.m) break;
  }
  AccessCost cost;
  cost.latency = t - start + 1;
  cost.tuning_time = cost.latency;  // Listening on every slot.
  return cost;
}

namespace {

template <typename AccessFn>
Result<MeanAccessCost> MeanOverStarts(std::uint64_t cycle, AccessFn access) {
  MeanAccessCost mean;
  for (std::uint64_t s = 0; s < cycle; ++s) {
    BDISK_ASSIGN_OR_RETURN(AccessCost cost, access(s));
    mean.latency += static_cast<double>(cost.latency);
    mean.tuning_time += static_cast<double>(cost.tuning_time);
  }
  mean.latency /= static_cast<double>(cycle);
  mean.tuning_time /= static_cast<double>(cycle);
  return mean;
}

}  // namespace

Result<MeanAccessCost> MeanIndexedAccess(const IndexedProgram& indexed,
                                         FileIndex target) {
  return MeanOverStarts(indexed.program.DataCycleLength(),
                        [&](std::uint64_t s) {
                          return IndexedAccess(indexed, target, s);
                        });
}

Result<MeanAccessCost> MeanNonIndexedAccess(const BroadcastProgram& program,
                                            FileIndex target) {
  return MeanOverStarts(program.DataCycleLength(), [&](std::uint64_t s) {
    return NonIndexedAccess(program, target, s);
  });
}

}  // namespace bdisk::broadcast
