/// \file spec_parser.h
/// \brief Plain-text workload specification parser for the CLI planner.
///
/// Format (one directive per line; '#' starts a comment):
///
///   channel 196608                       # channel rate, bytes/sec
///   blocksize 1024                       # optional; omit to auto-choose
///   file nav bytes=16384 latency=0.5 faults=1
///   gfile incidents blocks=2 latencies=12,14,16
///
/// `file` lines describe byte-domain files with a single latency (seconds)
/// and a fault count; `gfile` lines describe slot-domain files with a full
/// latency vector (slots), the paper's generalized model. A spec uses one
/// domain or the other, not both.
///
/// The full grammar, attribute tables, and error behaviour are documented
/// in docs/SPEC_FORMAT.md.

#ifndef BDISK_BDISK_SPEC_PARSER_H_
#define BDISK_BDISK_SPEC_PARSER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bdisk/block_size.h"
#include "bdisk/file_spec.h"
#include "common/status.h"

namespace bdisk::broadcast {

/// \brief Parsed workload specification.
struct WorkloadSpec {
  /// Channel rate in bytes/sec (0 = unspecified).
  std::uint64_t channel_bytes_per_second = 0;
  /// Fixed block size in bytes (0 = auto-choose).
  std::uint64_t block_size = 0;
  /// Byte-domain files (`file` lines).
  std::vector<ByteFileSpec> byte_files;
  /// Slot-domain generalized files (`gfile` lines).
  std::vector<GeneralizedFileSpec> generalized_files;

  bool IsByteDomain() const { return !byte_files.empty(); }
};

/// \brief Parses a whole spec text. Fails with InvalidArgument naming the
/// offending line on any syntax error, unknown directive, or mixed
/// domains.
Result<WorkloadSpec> ParseWorkloadSpec(const std::string& text);

}  // namespace bdisk::broadcast

#endif  // BDISK_BDISK_SPEC_PARSER_H_
