/// \file flat_builder.h
/// \brief Flat broadcast programs — the paper's baselines (Figures 5 and 6).
///
/// A *flat* program transmits every file once per broadcast period by
/// scanning through the files' blocks; there is no frequency assignment.
/// Two layouts:
/// * Contiguous — file after file (Figure 5: A1..A5 B1..B3);
/// * Spread     — blocks interleaved as uniformly as possible (Figure 6),
///   which minimizes the inter-block gap Delta and hence the AIDA error
///   recovery delay of Lemma 2.
/// Orthogonally, the program can rotate dispersed blocks (AIDA, n_i > m_i —
/// Figure 6's A'1..A'10 across two periods) or transmit the raw blocks
/// (n_i = m_i — Figure 5).

#ifndef BDISK_BDISK_FLAT_BUILDER_H_
#define BDISK_BDISK_FLAT_BUILDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bdisk/program.h"
#include "common/status.h"

namespace bdisk::broadcast {

/// \brief Block order within a flat period.
enum class FlatLayout {
  /// All of file 1's slots, then all of file 2's, ... (Figure 5).
  kContiguous,
  /// Slots interleaved proportionally so each file's slots are spread as
  /// evenly as possible (Figure 6).
  kSpread,
};

/// \brief Input to the flat builder: name, per-period slot count m, and the
/// number of dispersed blocks n to rotate through (n = m disables rotation).
struct FlatFileSpec {
  std::string name;
  /// Blocks needed to reconstruct (slots per period).
  std::uint32_t m = 1;
  /// Dispersed blocks to rotate through (>= m).
  std::uint32_t n = 1;
  /// Optional latency vector forwarded to the program for verification.
  std::vector<std::uint64_t> latency_slots;
};

/// \brief Builds a flat broadcast program. The period is Σ m_i.
Result<BroadcastProgram> BuildFlatProgram(const std::vector<FlatFileSpec>& files,
                                          FlatLayout layout);

}  // namespace bdisk::broadcast

#endif  // BDISK_BDISK_FLAT_BUILDER_H_
