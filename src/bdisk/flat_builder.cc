#include "bdisk/flat_builder.h"

#include <algorithm>

namespace bdisk::broadcast {

namespace {

std::vector<FileIndex> ContiguousSlots(const std::vector<FlatFileSpec>& files) {
  std::vector<FileIndex> slots;
  for (std::size_t f = 0; f < files.size(); ++f) {
    for (std::uint32_t k = 0; k < files[f].m; ++k) {
      slots.push_back(static_cast<FileIndex>(f));
    }
  }
  return slots;
}

/// Proportional interleave by largest accumulated deficit (error diffusion):
/// at each slot, emit the file whose fair share is furthest ahead of what it
/// has received. Ties break toward the larger file, then lower index, making
/// the layout deterministic.
std::vector<FileIndex> SpreadSlots(const std::vector<FlatFileSpec>& files) {
  std::uint64_t period = 0;
  for (const FlatFileSpec& f : files) period += f.m;
  std::vector<std::uint64_t> emitted(files.size(), 0);
  std::vector<FileIndex> slots;
  slots.reserve(period);
  for (std::uint64_t t = 0; t < period; ++t) {
    std::size_t pick = files.size();
    // Deficit of file f after t slots: m_f * (t + 1) - emitted_f * period,
    // kept in integer arithmetic.
    std::int64_t best_deficit = 0;
    for (std::size_t f = 0; f < files.size(); ++f) {
      if (emitted[f] >= files[f].m) continue;
      const std::int64_t deficit =
          static_cast<std::int64_t>(files[f].m * (t + 1)) -
          static_cast<std::int64_t>(emitted[f] * period);
      if (pick == files.size() || deficit > best_deficit ||
          (deficit == best_deficit && files[f].m > files[pick].m)) {
        pick = f;
        best_deficit = deficit;
      }
    }
    emitted[pick] += 1;
    slots.push_back(static_cast<FileIndex>(pick));
  }
  return slots;
}

}  // namespace

Result<BroadcastProgram> BuildFlatProgram(const std::vector<FlatFileSpec>& files,
                                          FlatLayout layout) {
  if (files.empty()) {
    return Status::InvalidArgument("BuildFlatProgram: no files");
  }
  for (const FlatFileSpec& f : files) {
    if (f.m == 0) {
      return Status::InvalidArgument("BuildFlatProgram: file '" + f.name +
                                     "' has zero size");
    }
    if (f.n < f.m) {
      return Status::InvalidArgument("BuildFlatProgram: file '" + f.name +
                                     "' has n < m");
    }
  }
  std::vector<FileIndex> slots = layout == FlatLayout::kContiguous
                                     ? ContiguousSlots(files)
                                     : SpreadSlots(files);
  std::vector<ProgramFile> program_files;
  program_files.reserve(files.size());
  for (const FlatFileSpec& f : files) {
    program_files.push_back(ProgramFile{f.name, f.m, f.n, f.latency_slots});
  }
  return BroadcastProgram::Create(std::move(program_files), std::move(slots));
}

}  // namespace bdisk::broadcast
