/// \file block_size.h
/// \brief Block-size planning — the paper's Section 5 open question as an
/// API.
///
/// "Our problem reduces to finding out the largest b that satisfies the
/// combined timeliness, fault-tolerance, and bandwidth constraints."
///
/// Given files in *bytes*, latencies in seconds, a channel in bytes/sec
/// and a candidate block-size ladder, ChooseLargestFeasibleBlockSize walks
/// the ladder from the largest size down and returns the first block size
/// whose induced broadcast-disk system (m_i = ceil(bytes_i / b) blocks at
/// bandwidth floor(channel / b) blocks/sec) is actually schedulable —
/// large blocks minimize the O(m^2) dispersal/reconstruction cost, small
/// blocks use bandwidth more efficiently.

#ifndef BDISK_BDISK_BLOCK_SIZE_H_
#define BDISK_BDISK_BLOCK_SIZE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bdisk/pinwheel_builder.h"
#include "common/status.h"
#include "pinwheel/scheduler.h"

namespace bdisk::broadcast {

/// \brief A broadcast file in byte units (pre block-size decision).
struct ByteFileSpec {
  std::string name;
  /// Payload size in bytes.
  std::uint64_t bytes = 1;
  /// Latency constraint in seconds.
  double latency_seconds = 1.0;
  /// Block-loss faults to tolerate per retrieval.
  std::uint64_t fault_tolerance = 0;
};

/// \brief Outcome of the block-size search.
struct BlockSizeChoice {
  /// The chosen (largest feasible) block size in bytes.
  std::uint64_t block_size = 0;
  /// Channel bandwidth in blocks/sec at that block size.
  std::uint64_t bandwidth_blocks_per_second = 0;
  /// Per-file dispersal levels m_i at that block size.
  std::vector<std::uint64_t> dispersal_levels;
  /// The built (verified) program.
  BuildResult build;
};

/// \brief Finds the largest candidate block size whose induced system is
/// schedulable; fails Infeasible if none is.
///
/// `candidates` may be in any order (searched largest-first); empty means
/// the default power-of-two ladder 64 B .. 64 KiB.
Result<BlockSizeChoice> ChooseLargestFeasibleBlockSize(
    const std::vector<ByteFileSpec>& files,
    std::uint64_t channel_bytes_per_second,
    const pinwheel::Scheduler& scheduler,
    std::vector<std::uint64_t> candidates = {});

}  // namespace bdisk::broadcast

#endif  // BDISK_BDISK_BLOCK_SIZE_H_
