#include "bdisk/program.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"
#include "common/stats.h"
#include "pinwheel/verifier.h"

namespace bdisk::broadcast {

Result<BroadcastProgram> BroadcastProgram::Create(
    std::vector<ProgramFile> files, std::vector<FileIndex> slot_to_file) {
  if (files.empty()) {
    return Status::InvalidArgument("BroadcastProgram: no files");
  }
  if (slot_to_file.empty()) {
    return Status::InvalidArgument("BroadcastProgram: empty period");
  }
  for (std::size_t f = 0; f < files.size(); ++f) {
    const ProgramFile& pf = files[f];
    if (pf.m == 0) {
      return Status::InvalidArgument("BroadcastProgram: file '" + pf.name +
                                     "' has zero size");
    }
    if (pf.n < pf.m) {
      return Status::InvalidArgument(
          "BroadcastProgram: file '" + pf.name + "' rotates " +
          std::to_string(pf.n) + " blocks, below its threshold m = " +
          std::to_string(pf.m));
    }
  }

  BroadcastProgram p;
  p.occurrences_.resize(files.size());
  for (std::uint64_t t = 0; t < slot_to_file.size(); ++t) {
    const FileIndex f = slot_to_file[t];
    if (f == kIdleSlot) continue;
    if (f >= files.size()) {
      return Status::InvalidArgument(
          "BroadcastProgram: slot " + std::to_string(t) +
          " references unknown file " + std::to_string(f));
    }
    p.occurrences_[f].push_back(t);
  }
  for (std::size_t f = 0; f < files.size(); ++f) {
    if (p.occurrences_[f].empty()) {
      return Status::InvalidArgument("BroadcastProgram: file '" +
                                     files[f].name +
                                     "' never appears in the period");
    }
  }

  // Data cycle: the block rotation of file f re-aligns with the period
  // every n_f / gcd(c_f, n_f) periods.
  std::uint64_t factor = 1;
  for (std::size_t f = 0; f < files.size(); ++f) {
    const std::uint64_t c = p.occurrences_[f].size();
    const std::uint64_t n = files[f].n;
    factor = LcmCapped(factor, n / Gcd(c, n));
  }
  p.data_cycle_ = factor * slot_to_file.size();

  p.files_ = std::move(files);
  p.slot_to_file_ = std::move(slot_to_file);
  return p;
}

std::optional<FileIndex> BroadcastProgram::FileAt(std::uint64_t t) const {
  const FileIndex f = slot_to_file_[t % period()];
  if (f == kIdleSlot) return std::nullopt;
  return f;
}

std::optional<TransmissionRef> BroadcastProgram::TransmissionAt(
    std::uint64_t t) const {
  const std::optional<FileIndex> f = FileAt(t);
  if (!f.has_value()) return std::nullopt;
  // Transmission ordinal of this file up to and including slot t.
  const std::uint64_t pos = t % period();
  const auto& occ = occurrences_[*f];
  const auto it = std::lower_bound(occ.begin(), occ.end(), pos);
  BDISK_DCHECK(it != occ.end() && *it == pos);
  const std::uint64_t rank = static_cast<std::uint64_t>(it - occ.begin());
  const std::uint64_t ordinal = (t / period()) * occ.size() + rank;
  return TransmissionRef{
      *f, static_cast<std::uint32_t>(ordinal % files_[*f].n)};
}

const std::vector<std::uint64_t>& BroadcastProgram::OccurrencesOf(
    FileIndex file) const {
  BDISK_CHECK(file < files_.size());
  return occurrences_[file];
}

std::uint64_t BroadcastProgram::CountOf(FileIndex file) const {
  return OccurrencesOf(file).size();
}

std::uint64_t BroadcastProgram::MaxGapOf(FileIndex file) const {
  const auto& occ = OccurrencesOf(file);
  std::uint64_t max_gap = 0;
  for (std::size_t i = 0; i < occ.size(); ++i) {
    const std::uint64_t next =
        i + 1 < occ.size() ? occ[i + 1] : occ[0] + period();
    max_gap = std::max(max_gap, next - occ[i]);
  }
  return max_gap;
}

double BroadcastProgram::Utilization() const {
  std::uint64_t busy = 0;
  for (FileIndex f : slot_to_file_) {
    if (f != kIdleSlot) ++busy;
  }
  return static_cast<double>(busy) / static_cast<double>(period());
}

Status BroadcastProgram::VerifyBroadcastConditions() const {
  // Reuse the pinwheel verifier: treat file indices as task ids.
  std::vector<pinwheel::TaskId> cycle(slot_to_file_.size());
  for (std::size_t t = 0; t < slot_to_file_.size(); ++t) {
    cycle[t] = slot_to_file_[t] == kIdleSlot
                   ? pinwheel::Schedule::kIdle
                   : static_cast<pinwheel::TaskId>(slot_to_file_[t]);
  }
  BDISK_ASSIGN_OR_RETURN(pinwheel::Schedule schedule,
                         pinwheel::Schedule::FromCycle(std::move(cycle)));
  for (std::size_t f = 0; f < files_.size(); ++f) {
    const ProgramFile& pf = files_[f];
    for (std::size_t j = 0; j < pf.latency_slots.size(); ++j) {
      const pinwheel::ConditionCheck check = pinwheel::Verifier::CheckCondition(
          schedule, static_cast<pinwheel::TaskId>(f), pf.m + j,
          pf.latency_slots[j]);
      if (!check.satisfied) {
        return Status::Infeasible("file '" + pf.name + "' violates " +
                                  check.ToString());
      }
    }
  }
  return Status::OK();
}

std::string BroadcastProgram::ToString(std::uint64_t periods) const {
  std::ostringstream oss;
  const std::uint64_t total = periods * period();
  for (std::uint64_t t = 0; t < total; ++t) {
    if (t > 0) oss << ' ';
    const std::optional<TransmissionRef> tx = TransmissionAt(t);
    if (!tx.has_value()) {
      oss << '*';
    } else {
      oss << files_[tx->file].name << tx->block_index;
    }
  }
  return oss.str();
}

}  // namespace bdisk::broadcast
