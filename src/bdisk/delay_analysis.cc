#include "bdisk/delay_analysis.h"

#include <algorithm>
#include <bit>
#include <unordered_map>
#include <vector>

#include "common/check.h"

namespace bdisk::broadcast {

namespace {

/// One data cycle of a file's transmissions: slots and carried block index.
struct OccurrenceTable {
  std::vector<std::uint64_t> slots;         // Within the data cycle.
  std::vector<std::uint32_t> block_index;   // Parallel to slots.
  std::uint64_t data_cycle = 0;

  std::uint64_t SlotOf(std::uint64_t stream_index) const {
    const std::uint64_t c = slots.size();
    return (stream_index / c) * data_cycle + slots[stream_index % c];
  }
  std::uint32_t BlockOf(std::uint64_t stream_index) const {
    return block_index[stream_index % block_index.size()];
  }
};

OccurrenceTable BuildTable(const BroadcastProgram& program, FileIndex file) {
  OccurrenceTable t;
  t.data_cycle = program.DataCycleLength();
  for (std::uint64_t slot = 0; slot < t.data_cycle; ++slot) {
    const auto tx = program.TransmissionAt(slot);
    if (tx.has_value() && tx->file == file) {
      t.slots.push_back(slot);
      t.block_index.push_back(tx->block_index);
    }
  }
  return t;
}

/// Exhaustive adversary DP (see header): maximum completion slot for a
/// client whose stream starts at occurrence `first`, needing `m` distinct
/// blocks out of `n` rotated ones, against at most `errors` corruptions.
class AdversaryDp {
 public:
  // Horizon: each corruption delays completion by at most n occurrences
  // (after n further transmissions every block index has reappeared), and
  // with no errors left the client completes within n occurrences, so
  // m + (r + 1) * n + 2 transmissions always suffice.
  AdversaryDp(const OccurrenceTable& table, std::uint32_t m, std::uint32_t n,
              std::uint64_t first, std::uint32_t errors)
      : table_(&table), m_(m), n_(n), first_(first),
        horizon_(m + (static_cast<std::uint64_t>(errors) + 1) * n + 2) {}

  std::uint64_t MaxCompletion(std::uint32_t errors) {
    return Solve(0, errors, 0);
  }

 private:
  struct Key {
    std::uint64_t k;
    std::uint32_t e;
    std::uint32_t mask;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const {
      std::size_t h = key.k;
      h = h * 1099511628211ULL ^ key.e;
      h = h * 1099511628211ULL ^ key.mask;
      return h;
    }
  };

  std::uint64_t Solve(std::uint64_t k, std::uint32_t e, std::uint32_t mask) {
    BDISK_CHECK(k <= horizon_);
    const Key key{k, e, mask};
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;

    const std::uint32_t block = table_->BlockOf(first_ + k);
    const std::uint32_t received = mask | (1u << block);
    std::uint64_t best;
    if (static_cast<std::uint32_t>(std::popcount(received)) >= m_) {
      // Receiving completes the retrieval now...
      best = table_->SlotOf(first_ + k);
      // ...unless the adversary can afford to corrupt this transmission.
      if (e > 0) best = std::max(best, Solve(k + 1, e - 1, mask));
    } else {
      // Not complete either way; corrupting is pointless here only if it
      // cannot change the future — explore both options.
      best = Solve(k + 1, e, received);
      if (e > 0) best = std::max(best, Solve(k + 1, e - 1, mask));
    }
    memo_.emplace(key, best);
    return best;
  }

  const OccurrenceTable* table_;
  std::uint32_t m_;
  std::uint32_t n_;
  std::uint64_t first_;
  std::uint64_t horizon_;
  std::unordered_map<Key, std::uint64_t, KeyHash> memo_;
};

}  // namespace

Result<std::uint64_t> DelayAnalyzer::WorstCaseCompletion(
    FileIndex file, std::uint64_t start, std::uint32_t errors,
    ClientModel model) const {
  if (file >= program_->file_count()) {
    return Status::InvalidArgument("DelayAnalyzer: unknown file");
  }
  const ProgramFile& pf = program_->files()[file];
  if (model == ClientModel::kFlat && pf.n != pf.m) {
    return Status::InvalidArgument(
        "DelayAnalyzer: flat client model requires n == m (file '" + pf.name +
        "' rotates " + std::to_string(pf.n) + " blocks)");
  }

  const OccurrenceTable table = BuildTable(*program_, file);
  // First stream occurrence at or after `start`.
  const std::uint64_t cycle_base = (start / table.data_cycle);
  std::uint64_t first = cycle_base * table.slots.size();
  const std::uint64_t offset = start % table.data_cycle;
  {
    const auto it =
        std::lower_bound(table.slots.begin(), table.slots.end(), offset);
    if (it == table.slots.end()) {
      first += table.slots.size();  // Wraps into the next data cycle.
    } else {
      first += static_cast<std::uint64_t>(it - table.slots.begin());
    }
  }

  // Fast path: with n >= m + r every m + r consecutive transmissions carry
  // distinct blocks, so the adversary's best is to corrupt any r of the
  // first m + r - 1; completion is exactly the (m + r)-th transmission.
  if (pf.n >= pf.m + errors) {
    return table.SlotOf(first + pf.m + errors - 1);
  }

  // Fast path for the flat regime where each block is transmitted exactly
  // once per period (n == m == transmissions per period): the error-free
  // client finishes at the m-th transmission, and the adversary's optimum
  // is to corrupt the last-needed block on each of its next r appearances
  // — exactly one period each (Lemma 1, tight).
  if (pf.n == pf.m && program_->CountOf(file) == pf.n) {
    return table.SlotOf(first + pf.m - 1) + errors * program_->period();
  }

  if (pf.n > 20) {
    return Status::ResourceExhausted(
        "DelayAnalyzer: adversary DP gated at n <= 20 blocks (file '" +
        pf.name + "' has n = " + std::to_string(pf.n) + ")");
  }
  AdversaryDp dp(table, pf.m, pf.n, first, errors);
  return dp.MaxCompletion(errors);
}

Result<std::uint64_t> DelayAnalyzer::WorstCaseDelay(FileIndex file,
                                                    std::uint32_t errors,
                                                    ClientModel model) const {
  if (file >= program_->file_count()) {
    return Status::InvalidArgument("DelayAnalyzer: unknown file");
  }
  const OccurrenceTable table = BuildTable(*program_, file);
  std::uint64_t worst = 0;
  for (std::size_t j = 0; j < table.slots.size(); ++j) {
    const std::uint64_t start = table.slots[j];
    BDISK_ASSIGN_OR_RETURN(std::uint64_t with_errors,
                           WorstCaseCompletion(file, start, errors, model));
    BDISK_ASSIGN_OR_RETURN(std::uint64_t without_errors,
                           WorstCaseCompletion(file, start, 0, model));
    worst = std::max(worst, with_errors - without_errors);
  }
  return worst;
}

Result<std::uint64_t> DelayAnalyzer::WorstCaseLatency(FileIndex file,
                                                      std::uint32_t errors,
                                                      ClientModel model) const {
  if (file >= program_->file_count()) {
    return Status::InvalidArgument("DelayAnalyzer: unknown file");
  }
  const OccurrenceTable table = BuildTable(*program_, file);
  std::uint64_t worst = 0;
  for (std::size_t j = 0; j < table.slots.size(); ++j) {
    // Worst start aiming at occurrence j: the slot right after the previous
    // occurrence (the client "just missed" it).
    const std::uint64_t prev =
        j == 0 ? table.slots.back() : table.slots[j - 1] + table.data_cycle;
    // Work one data cycle ahead so starts are non-negative.
    const std::uint64_t start = prev + 1;
    BDISK_ASSIGN_OR_RETURN(std::uint64_t completion,
                           WorstCaseCompletion(file, start, errors, model));
    worst = std::max(worst, completion - start + 1);
  }
  return worst;
}

}  // namespace bdisk::broadcast
