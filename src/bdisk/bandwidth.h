/// \file bandwidth.h
/// \brief Bandwidth planning for regular fault-tolerant real-time Bdisks
/// (paper, Section 3.2, Equations (1) and (2)).
///
/// The trivial lower bound on bandwidth is Σ_i (m_i + r_i) / T_i blocks/sec
/// (each file alone needs its blocks inside its window). Because the
/// 7/10-density pinwheel schedulers accept any instance of density <= 7/10,
///   B = ceil( (10/7) Σ_i (m_i + r_i) / T_i )
/// is *sufficient* — at most 43% above the lower bound. This module
/// computes both figures, lowers file sets to pinwheel instances at a given
/// bandwidth, and searches for the smallest bandwidth a concrete scheduler
/// actually accepts (usually below the 10/7 bound).

#ifndef BDISK_BDISK_BANDWIDTH_H_
#define BDISK_BDISK_BANDWIDTH_H_

#include <cstdint>
#include <vector>

#include "bdisk/file_spec.h"
#include "common/status.h"
#include "pinwheel/scheduler.h"
#include "pinwheel/task.h"

namespace bdisk::broadcast {

/// \brief Bandwidth planning results and helpers.
class BandwidthPlanner {
 public:
  /// Density bound assumed achievable by the scheduling algorithm (the
  /// paper uses Chan & Chin's 7/10).
  static constexpr double kSchedulableDensity = 0.7;

  /// Σ_i (m_i + r_i) / T_i — no bandwidth below this can work.
  static Result<double> LowerBound(const std::vector<FileSpec>& files);

  /// Eq. (1)/(2): ceil((10/7) Σ_i (m_i + r_i) / T_i), sufficient for the
  /// 7/10-density schedulers.
  static Result<std::uint64_t> SufficientBandwidth(
      const std::vector<FileSpec>& files);

  /// \brief The pinwheel instance induced at integer bandwidth B:
  /// task i = (i, m_i + r_i, floor(B * T_i)). Fails if some window cannot
  /// hold its blocks.
  static Result<pinwheel::Instance> ToPinwheelInstance(
      const std::vector<FileSpec>& files,
      std::uint64_t bandwidth_blocks_per_second);

  /// \brief Smallest integer bandwidth in [lower bound, hi] at which
  /// `scheduler` produces a (verified) schedule, by binary search; assumes
  /// the scheduler's success is monotone in bandwidth, which holds for the
  /// library's schedulers in practice (a final downward scan result is
  /// still a *valid* bandwidth even if monotonicity is violated —
  /// the returned schedule is always verified). `hi` defaults to the
  /// sufficient bandwidth times four.
  struct MinimalBandwidth {
    std::uint64_t bandwidth = 0;
    pinwheel::Schedule schedule;
  };
  static Result<MinimalBandwidth> FindMinimalBandwidth(
      const std::vector<FileSpec>& files, const pinwheel::Scheduler& scheduler,
      std::uint64_t hi = 0);
};

}  // namespace bdisk::broadcast

#endif  // BDISK_BDISK_BANDWIDTH_H_
