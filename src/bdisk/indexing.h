/// \file indexing.h
/// \brief (1, m) index broadcasting — "energy efficient indexing on air"
/// (Imielinski, Viswanathan & Badrinath [24]; the paper's footnote 3
/// discusses broadcasting a directory at the start of each period as the
/// alternative to self-identifying blocks).
///
/// Battery-limited clients care about *tuning time* (slots spent actively
/// listening) separately from access latency: a dozing receiver burns far
/// less power. Interleaving `replication` copies of an index segment into
/// the broadcast lets a client probe one slot, doze to the next index,
/// read the directory, then doze again until exactly its target's slots.
///
/// The classic (1, m) tradeoff: more index copies shorten the doze-to-
/// index wait but lengthen the period (hurting latency); tuning time is
/// nearly flat and tiny either way. bench_indexing sweeps the replication
/// factor.

#ifndef BDISK_BDISK_INDEXING_H_
#define BDISK_BDISK_INDEXING_H_

#include <cstdint>

#include "bdisk/program.h"
#include "common/status.h"

namespace bdisk::broadcast {

/// \brief Options for index interleaving.
struct IndexingOptions {
  /// Number of index copies per broadcast period (the "m" of (1, m)
  /// indexing); >= 1.
  std::uint32_t replication = 1;
  /// Slots per index copy (directory size in blocks); >= 1.
  std::uint64_t index_slots = 1;
};

/// \brief An indexed program: the base program with index segments
/// interleaved, plus the index's file id.
struct IndexedProgram {
  BroadcastProgram program;
  /// File index of the index pseudo-file ("__index") within `program`.
  FileIndex index_file = 0;
  IndexingOptions options;
};

/// \brief Interleaves `options.replication` index segments, evenly spaced,
/// into `base`. The index is modeled as an extra file whose m = n =
/// index_slots blocks are each transmitted once per segment.
Result<IndexedProgram> BuildIndexedProgram(const BroadcastProgram& base,
                                           const IndexingOptions& options);

/// \brief Latency and tuning time of one client access (fault-free,
/// deterministic).
struct AccessCost {
  /// Slots from start to retrieval completion, inclusive.
  std::uint64_t latency = 0;
  /// Slots spent actively listening (the energy proxy).
  std::uint64_t tuning_time = 0;
};

/// \brief Index-guided access: probe one slot, doze to the next index
/// segment, read it, then listen only on the target file's transmissions
/// until m distinct blocks are collected.
Result<AccessCost> IndexedAccess(const IndexedProgram& indexed,
                                 FileIndex target, std::uint64_t start);

/// \brief Baseline access without an index: the client must listen on
/// every slot (it cannot know which transmissions are its target's), so
/// tuning time equals latency.
Result<AccessCost> NonIndexedAccess(const BroadcastProgram& program,
                                    FileIndex target, std::uint64_t start);

/// \brief Means of IndexedAccess / NonIndexedAccess over every start slot
/// in one data cycle.
struct MeanAccessCost {
  double latency = 0.0;
  double tuning_time = 0.0;
};
Result<MeanAccessCost> MeanIndexedAccess(const IndexedProgram& indexed,
                                         FileIndex target);
Result<MeanAccessCost> MeanNonIndexedAccess(const BroadcastProgram& program,
                                            FileIndex target);

}  // namespace bdisk::broadcast

#endif  // BDISK_BDISK_INDEXING_H_
