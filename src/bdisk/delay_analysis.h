/// \file delay_analysis.h
/// \brief Exact worst-case retrieval-delay analysis under adversarial block
/// loss (paper, Lemmas 1 and 2, Figure 7).
///
/// Retrieval model. A client starts listening at slot s and wants file F.
/// Every slot in which the program transmits a block of F delivers that
/// block unless the adversary corrupts the transmission; the adversary may
/// corrupt at most r transmissions of F, placed to maximize the client's
/// completion time.
///
/// * IDA client  — needs any m distinct dispersed blocks (the program's
///   data-cycle rotation determines which block each transmission carries).
/// * Flat client — needs every one of the m specific raw blocks (the
///   paper's "without IDA" regime, where a lost block must be awaited on
///   its next retransmission).
///
/// All quantities are computed *exactly* (closed form or exhaustive
/// adversary DP), not sampled. Delays are in slots and measured as
///   completion(s, r adversarial errors) - completion(s, 0 errors),
/// maximized over every start slot s — the "worst-case delay incurred when
/// retrieving the file" of Lemmas 1 and 2. Lemma 1 bounds the flat-client
/// figure by r * tau (tau = period); Lemma 2 bounds the IDA-client figure
/// by r * Delta (Delta = max inter-block gap).

#ifndef BDISK_BDISK_DELAY_ANALYSIS_H_
#define BDISK_BDISK_DELAY_ANALYSIS_H_

#include <cstdint>

#include "bdisk/program.h"
#include "common/status.h"

namespace bdisk::broadcast {

/// \brief Client retrieval semantics.
enum class ClientModel {
  /// Any m distinct dispersed blocks reconstruct the file (Section 2.1).
  kIda,
  /// All m specific raw blocks are required (no dispersal).
  kFlat,
};

/// \brief Exact worst-case delay analysis for one program.
class DelayAnalyzer {
 public:
  explicit DelayAnalyzer(const BroadcastProgram& program)
      : program_(&program) {}

  /// \brief Completion slot (the slot index whose transmission completes
  /// the retrieval) for a client starting at slot `start`, under the worst
  /// adversarial placement of `errors` corrupted transmissions.
  ///
  /// Fails with ResourceExhausted when the flat/DP path would need a state
  /// space beyond ~2^20 (m > 20).
  Result<std::uint64_t> WorstCaseCompletion(FileIndex file,
                                            std::uint64_t start,
                                            std::uint32_t errors,
                                            ClientModel model) const;

  /// \brief max over starts s of [completion(s, errors) - completion(s, 0)]
  /// — the Lemma 1 / Lemma 2 "worst-case delay".
  Result<std::uint64_t> WorstCaseDelay(FileIndex file, std::uint32_t errors,
                                       ClientModel model) const;

  /// \brief max over starts s of [completion(s, errors) - s + 1] — the
  /// worst-case end-to-end retrieval latency in slots, the quantity the
  /// latency vectors d⃗ constrain.
  Result<std::uint64_t> WorstCaseLatency(FileIndex file, std::uint32_t errors,
                                         ClientModel model) const;

  /// Lemma 1 upper bound: r * tau.
  std::uint64_t Lemma1Bound(std::uint32_t errors) const {
    return errors * program_->period();
  }

  /// Lemma 2 upper bound: r * Delta(file).
  std::uint64_t Lemma2Bound(FileIndex file, std::uint32_t errors) const {
    return errors * program_->MaxGapOf(file);
  }

 private:
  const BroadcastProgram* program_;
};

}  // namespace bdisk::broadcast

#endif  // BDISK_BDISK_DELAY_ANALYSIS_H_
