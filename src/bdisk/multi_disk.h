/// \file multi_disk.h
/// \brief The classic multi-speed Broadcast Disks program generator
/// (Acharya, Franklin & Zdonik [1, 4] — the prior work the paper builds
/// on).
///
/// Files are placed on virtual "disks" with relative spin frequencies;
/// hot data on fast disks is broadcast more often, minimizing *mean*
/// latency across a client population. The generation algorithm is the
/// SIGMOD'95 one: with disk frequencies f_1..f_k and L = lcm(f_i), disk i
/// is split into C_i = L / f_i chunks and minor cycle j broadcasts chunk
/// (j mod C_i) of every disk, so a disk-i page recurs exactly f_i times
/// per major cycle.
///
/// This module exists as the baseline the paper positions itself against:
/// frequency assignment optimizes the average, while the pinwheel builders
/// of pinwheel_builder.h guarantee worst-case deadlines. The bench
/// bench_multidisk quantifies the contrast. AIDA rotation composes with it
/// (files may set n > m), since rotation is a property of BroadcastProgram
/// itself.

#ifndef BDISK_BDISK_MULTI_DISK_H_
#define BDISK_BDISK_MULTI_DISK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bdisk/flat_builder.h"
#include "bdisk/program.h"
#include "common/status.h"

namespace bdisk::broadcast {

/// \brief One virtual disk: a relative spin frequency and the files on it.
struct DiskSpec {
  /// Relative broadcast frequency (>= 1); a frequency-3 disk's pages
  /// appear three times as often as a frequency-1 disk's.
  std::uint32_t relative_frequency = 1;
  /// Files resident on this disk (FlatFileSpec: name, m slots, n rotated).
  std::vector<FlatFileSpec> files;
};

/// \brief Result of multi-disk generation: the program plus layout info.
struct MultiDiskProgram {
  BroadcastProgram program;
  /// Minor cycles per major cycle (L = lcm of frequencies).
  std::uint32_t minor_cycles = 0;
  /// Slots per minor cycle.
  std::uint64_t minor_cycle_slots = 0;
};

/// \brief Generates the interleaved multi-disk broadcast program.
///
/// Every disk must hold at least one file. When a disk's slot count does
/// not divide evenly into its C_i = lcm/f_i chunks, the trailing chunk is
/// padded with idle slots (as in the original algorithm's empty pages).
Result<MultiDiskProgram> BuildMultiDiskProgram(
    const std::vector<DiskSpec>& disks);

/// \brief Mean retrieval latency (slots) for a whole-file retrieval of
/// `file`, averaged over all start slots in one data cycle, assuming a
/// fault-free channel. Exact (closed form over the occurrence lists).
double MeanRetrievalLatency(const BroadcastProgram& program, FileIndex file);

}  // namespace bdisk::broadcast

#endif  // BDISK_BDISK_MULTI_DISK_H_
