#include "bdisk/block_size.h"

#include <algorithm>

namespace bdisk::broadcast {

Result<BlockSizeChoice> ChooseLargestFeasibleBlockSize(
    const std::vector<ByteFileSpec>& files,
    std::uint64_t channel_bytes_per_second,
    const pinwheel::Scheduler& scheduler,
    std::vector<std::uint64_t> candidates) {
  if (files.empty()) {
    return Status::InvalidArgument("ChooseBlockSize: no files");
  }
  if (channel_bytes_per_second == 0) {
    return Status::InvalidArgument("ChooseBlockSize: channel must be > 0");
  }
  for (const ByteFileSpec& f : files) {
    if (f.bytes == 0 || !(f.latency_seconds > 0.0)) {
      return Status::InvalidArgument("ChooseBlockSize: file '" + f.name +
                                     "' malformed");
    }
  }
  if (candidates.empty()) {
    for (std::uint64_t b = 64; b <= 64 * 1024; b *= 2) {
      candidates.push_back(b);
    }
  }
  std::sort(candidates.begin(), candidates.end(), std::greater<>());

  Status last = Status::Infeasible("ChooseBlockSize: no candidates");
  for (std::uint64_t block_size : candidates) {
    if (block_size == 0) continue;
    const std::uint64_t bandwidth = channel_bytes_per_second / block_size;
    if (bandwidth == 0) {
      last = Status::Infeasible("block size " + std::to_string(block_size) +
                                " exceeds the channel rate");
      continue;
    }
    std::vector<FileSpec> specs;
    std::vector<std::uint64_t> levels;
    for (const ByteFileSpec& f : files) {
      const std::uint64_t m = (f.bytes + block_size - 1) / block_size;
      levels.push_back(m);
      specs.push_back(FileSpec{f.name, m, f.latency_seconds,
                               f.fault_tolerance});
    }
    auto build = BuildProgram(specs, bandwidth, scheduler);
    if (build.ok()) {
      return BlockSizeChoice{block_size, bandwidth, std::move(levels),
                             std::move(*build)};
    }
    last = build.status();
  }
  return Status::Infeasible(
      "ChooseBlockSize: no candidate block size is schedulable (last: " +
      last.message() + ")");
}

}  // namespace bdisk::broadcast
