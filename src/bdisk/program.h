/// \file program.h
/// \brief Broadcast programs (paper, Sections 2.3 and 4.1).
///
/// A broadcast program is a function P from slots to files (Definition 1):
/// P(t) = i iff a block of file F_i is transmitted during slot t, P(t) = 0
/// (here: kIdle) iff nothing is transmitted. We represent the periodic case
/// plus the *data-cycle rotation* of Section 2.3: at its k-th transmission
/// (counted from slot 0) a file sends dispersed block k mod n_i, so the
/// program repeats blocks only after the full program data cycle, and any
/// run of up to n_i consecutive transmissions of a file carries pairwise
/// distinct blocks.

#ifndef BDISK_BDISK_PROGRAM_H_
#define BDISK_BDISK_PROGRAM_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "ida/block.h"
#include "pinwheel/schedule.h"

namespace bdisk::broadcast {

/// Index of a file within a program (dense; doubles as ida::FileId).
using FileIndex = std::uint32_t;

/// \brief Per-file metadata carried by a program.
struct ProgramFile {
  std::string name;
  /// Reconstruction threshold m_i (blocks needed by a client).
  std::uint32_t m = 1;
  /// Number of distinct dispersed blocks the server rotates through
  /// (the AIDA bandwidth-allocation choice n_i, m_i <= n_i).
  std::uint32_t n = 1;
  /// Optional latency vector d⃗_i (slots) for bc verification; empty means
  /// no real-time constraint attached.
  std::vector<std::uint64_t> latency_slots;
};

/// \brief A transmission: which file, and which of its dispersed blocks.
struct TransmissionRef {
  FileIndex file = 0;
  std::uint32_t block_index = 0;

  bool operator==(const TransmissionRef&) const = default;
};

/// \brief A periodic broadcast program with data-cycle rotation.
class BroadcastProgram {
 public:
  /// Constructs an empty placeholder; use Create() to obtain a usable
  /// program (all accessors require a non-empty period).
  BroadcastProgram() = default;

  /// Builds a program. `slot_to_file[t]` gives the file broadcast in slot t
  /// of the period, or kIdleSlot. Every file must appear at least once per
  /// period and have n >= m.
  static Result<BroadcastProgram> Create(std::vector<ProgramFile> files,
                                         std::vector<FileIndex> slot_to_file);

  /// Marker for an idle slot in `slot_to_file`.
  static constexpr FileIndex kIdleSlot = 0xFFFFFFFFu;

  /// Broadcast period tau in slots (Lemma 1).
  std::uint64_t period() const { return slot_to_file_.size(); }

  /// \brief Program data cycle in slots (Section 2.3): the smallest multiple
  /// of the period after which every file's block rotation re-aligns; the
  /// program as a sequence of (file, block) pairs has exactly this period.
  std::uint64_t DataCycleLength() const { return data_cycle_; }

  const std::vector<ProgramFile>& files() const { return files_; }
  std::size_t file_count() const { return files_.size(); }

  /// File broadcast at absolute slot t, or nullopt when idle.
  std::optional<FileIndex> FileAt(std::uint64_t t) const;

  /// File and rotated block index at absolute slot t (nullopt when idle).
  std::optional<TransmissionRef> TransmissionAt(std::uint64_t t) const;

  /// Slots (within one period) at which `file` is broadcast, ascending.
  const std::vector<std::uint64_t>& OccurrencesOf(FileIndex file) const;

  /// Transmissions of `file` per period.
  std::uint64_t CountOf(FileIndex file) const;

  /// \brief The paper's Delta for Lemma 2: the maximum cyclic gap in slots
  /// between consecutive transmissions of `file`.
  std::uint64_t MaxGapOf(FileIndex file) const;

  /// Fraction of non-idle slots.
  double Utilization() const;

  /// \brief Checks every file's bc(m_i, d⃗_i) condition (files with an empty
  /// latency vector are skipped): file i must occupy at least m_i + j slots
  /// of every window of d^(j) slots. Exact over all window offsets.
  Status VerifyBroadcastConditions() const;

  /// The slot-to-file cycle (one period).
  const std::vector<FileIndex>& slots() const { return slot_to_file_; }

  /// "A0 B0 A1 ..." rendering of `periods` periods with rotated block
  /// indices (name + block index per slot, '*' for idle).
  std::string ToString(std::uint64_t periods = 1) const;

 private:
  std::vector<ProgramFile> files_;
  std::vector<FileIndex> slot_to_file_;
  std::vector<std::vector<std::uint64_t>> occurrences_;  // Per file.
  std::uint64_t data_cycle_ = 0;
};

}  // namespace bdisk::broadcast

#endif  // BDISK_BDISK_PROGRAM_H_
