#include "bdisk/bandwidth.h"

#include <cmath>

namespace bdisk::broadcast {

Result<double> BandwidthPlanner::LowerBound(const std::vector<FileSpec>& files) {
  if (files.empty()) {
    return Status::InvalidArgument("BandwidthPlanner: no files");
  }
  double sum = 0.0;
  for (const FileSpec& f : files) {
    BDISK_RETURN_NOT_OK(f.Validate());
    sum += f.DemandBlocksPerSecond();
  }
  return sum;
}

Result<std::uint64_t> BandwidthPlanner::SufficientBandwidth(
    const std::vector<FileSpec>& files) {
  BDISK_ASSIGN_OR_RETURN(double lower, LowerBound(files));
  return static_cast<std::uint64_t>(
      std::ceil(lower / kSchedulableDensity));
}

Result<pinwheel::Instance> BandwidthPlanner::ToPinwheelInstance(
    const std::vector<FileSpec>& files,
    std::uint64_t bandwidth_blocks_per_second) {
  if (files.empty()) {
    return Status::InvalidArgument("BandwidthPlanner: no files");
  }
  std::vector<pinwheel::Task> tasks;
  tasks.reserve(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    const FileSpec& f = files[i];
    BDISK_RETURN_NOT_OK(f.Validate());
    const auto window = static_cast<std::uint64_t>(
        std::floor(static_cast<double>(bandwidth_blocks_per_second) *
                   f.latency_seconds));
    const std::uint64_t need = f.size_blocks + f.fault_tolerance;
    if (window < need) {
      return Status::Infeasible(
          "file '" + f.name + "': window " + std::to_string(window) +
          " slots at bandwidth " + std::to_string(bandwidth_blocks_per_second) +
          " cannot hold " + std::to_string(need) + " blocks");
    }
    tasks.push_back(
        pinwheel::Task{static_cast<pinwheel::TaskId>(i), need, window});
  }
  return pinwheel::Instance::Create(std::move(tasks));
}

Result<BandwidthPlanner::MinimalBandwidth>
BandwidthPlanner::FindMinimalBandwidth(const std::vector<FileSpec>& files,
                                       const pinwheel::Scheduler& scheduler,
                                       std::uint64_t hi) {
  BDISK_ASSIGN_OR_RETURN(double lower_d, LowerBound(files));
  auto lo = static_cast<std::uint64_t>(std::ceil(lower_d));
  if (lo == 0) lo = 1;
  if (hi == 0) {
    BDISK_ASSIGN_OR_RETURN(std::uint64_t sufficient,
                           SufficientBandwidth(files));
    hi = sufficient * 4;
  }
  if (hi < lo) hi = lo;

  const auto try_bandwidth =
      [&files, &scheduler](
          std::uint64_t b) -> Result<pinwheel::Schedule> {
    auto instance = ToPinwheelInstance(files, b);
    if (!instance.ok()) return instance.status();
    return scheduler.BuildSchedule(*instance);
  };

  // Establish a feasible hi first.
  Result<pinwheel::Schedule> at_hi = try_bandwidth(hi);
  if (!at_hi.ok()) {
    return Status::Infeasible(
        "FindMinimalBandwidth: scheduler '" + scheduler.name() +
        "' fails even at bandwidth " + std::to_string(hi) + ": " +
        at_hi.status().message());
  }
  std::uint64_t best_b = hi;
  pinwheel::Schedule best_schedule = std::move(*at_hi);

  std::uint64_t lo_search = lo;
  std::uint64_t hi_search = hi;
  while (lo_search < hi_search) {
    const std::uint64_t mid = lo_search + (hi_search - lo_search) / 2;
    Result<pinwheel::Schedule> r = try_bandwidth(mid);
    if (r.ok()) {
      best_b = mid;
      best_schedule = std::move(*r);
      hi_search = mid;
    } else {
      lo_search = mid + 1;
    }
  }
  return MinimalBandwidth{best_b, std::move(best_schedule)};
}

}  // namespace bdisk::broadcast
