#include "bdisk/pinwheel_builder.h"

#include <cmath>

#include "bdisk/bandwidth.h"
#include "common/check.h"

namespace bdisk::broadcast {

namespace {

/// Lowers a scheduled pinwheel cycle to program slots through the
/// virtual-task -> file mapping.
std::vector<FileIndex> MapSlots(const pinwheel::Schedule& schedule,
                                const std::vector<std::uint32_t>& task_to_file) {
  std::vector<FileIndex> slots(schedule.period(), BroadcastProgram::kIdleSlot);
  for (std::uint64_t t = 0; t < schedule.period(); ++t) {
    const pinwheel::TaskId id = schedule.slots()[t];
    if (id == pinwheel::Schedule::kIdle) continue;
    BDISK_CHECK(id < task_to_file.size());
    slots[t] = task_to_file[id];
  }
  return slots;
}

Result<BroadcastProgram> FinishProgram(std::vector<ProgramFile> files,
                                       std::vector<FileIndex> slots) {
  BDISK_ASSIGN_OR_RETURN(
      BroadcastProgram program,
      BroadcastProgram::Create(std::move(files), std::move(slots)));
  // The pipeline is sound by construction; verification is a cheap
  // belt-and-braces check that turns any latent bug into a loud error.
  Status st = program.VerifyBroadcastConditions();
  if (!st.ok()) {
    return Status::Internal(
        "BuildProgram: emitted program fails verification: " + st.message());
  }
  return program;
}

}  // namespace

Result<BuildResult> BuildProgram(const std::vector<FileSpec>& files,
                                 std::uint64_t bandwidth_blocks_per_second,
                                 const pinwheel::Scheduler& scheduler,
                                 const BuilderOptions& options) {
  BDISK_ASSIGN_OR_RETURN(
      pinwheel::Instance instance,
      BandwidthPlanner::ToPinwheelInstance(files,
                                           bandwidth_blocks_per_second));
  BDISK_ASSIGN_OR_RETURN(pinwheel::Schedule schedule,
                         scheduler.BuildSchedule(instance));

  std::vector<ProgramFile> program_files;
  std::vector<std::uint32_t> task_to_file;
  program_files.reserve(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    const FileSpec& f = files[i];
    const auto window = static_cast<std::uint64_t>(
        std::floor(static_cast<double>(bandwidth_blocks_per_second) *
                   f.latency_seconds));
    ProgramFile pf;
    pf.name = f.name;
    pf.m = static_cast<std::uint32_t>(f.size_blocks);
    pf.n = static_cast<std::uint32_t>(f.size_blocks + f.fault_tolerance +
                                      options.extra_rotation);
    pf.latency_slots.assign(f.fault_tolerance + 1, window);
    program_files.push_back(std::move(pf));
    task_to_file.push_back(static_cast<std::uint32_t>(i));
  }

  BuildResult out{BroadcastProgram(), std::move(instance),
                  0.0, {}};
  out.scheduled_density = out.instance.density();
  BDISK_ASSIGN_OR_RETURN(
      out.program,
      FinishProgram(std::move(program_files),
                    MapSlots(schedule, task_to_file)));
  return out;
}

Result<BuildResult> BuildGeneralizedProgram(
    const std::vector<GeneralizedFileSpec>& files,
    const pinwheel::Scheduler& scheduler, const BuilderOptions& options) {
  if (files.empty()) {
    return Status::InvalidArgument("BuildGeneralizedProgram: no files");
  }
  std::vector<algebra::BroadcastCondition> conditions;
  conditions.reserve(files.size());
  for (const GeneralizedFileSpec& f : files) {
    BDISK_RETURN_NOT_OK(f.Validate());
    conditions.push_back(f.ToBroadcastCondition());
  }
  BDISK_ASSIGN_OR_RETURN(
      algebra::SystemConversion conversion,
      algebra::ConvertSystem(conditions, options.converter));
  BDISK_ASSIGN_OR_RETURN(pinwheel::Schedule schedule,
                         scheduler.BuildSchedule(conversion.instance));

  std::vector<ProgramFile> program_files;
  program_files.reserve(files.size());
  for (const GeneralizedFileSpec& f : files) {
    ProgramFile pf;
    pf.name = f.name;
    pf.m = static_cast<std::uint32_t>(f.size_blocks);
    pf.n = static_cast<std::uint32_t>(f.size_blocks + f.fault_tolerance() +
                                      options.extra_rotation);
    pf.latency_slots = f.latency_slots;
    program_files.push_back(std::move(pf));
  }

  BuildResult out{BroadcastProgram(), std::move(conversion.instance), 0.0,
                  std::move(conversion.conversions)};
  out.scheduled_density = out.instance.density();
  BDISK_ASSIGN_OR_RETURN(
      out.program,
      FinishProgram(std::move(program_files),
                    MapSlots(schedule, conversion.virtual_to_file)));
  return out;
}

}  // namespace bdisk::broadcast
