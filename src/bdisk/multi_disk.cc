#include "bdisk/multi_disk.h"

#include <algorithm>

#include "common/check.h"
#include "common/stats.h"

namespace bdisk::broadcast {

Result<MultiDiskProgram> BuildMultiDiskProgram(
    const std::vector<DiskSpec>& disks) {
  if (disks.empty()) {
    return Status::InvalidArgument("BuildMultiDiskProgram: no disks");
  }
  std::uint64_t lcm = 1;
  for (const DiskSpec& d : disks) {
    if (d.relative_frequency == 0) {
      return Status::InvalidArgument(
          "BuildMultiDiskProgram: frequency must be positive");
    }
    if (d.files.empty()) {
      return Status::InvalidArgument(
          "BuildMultiDiskProgram: every disk needs at least one file");
    }
    lcm = LcmCapped(lcm, d.relative_frequency, 1u << 20);
  }
  if (lcm >= (1u << 20)) {
    return Status::InvalidArgument(
        "BuildMultiDiskProgram: frequency lcm too large");
  }

  // Global file table plus per-disk page lists (file index per slot).
  std::vector<ProgramFile> files;
  struct DiskLayout {
    std::vector<FileIndex> pages;
    std::uint64_t chunks = 1;      // C_i = lcm / f_i.
    std::uint64_t chunk_size = 0;  // Pages per chunk (after padding).
  };
  std::vector<DiskLayout> layouts;
  for (const DiskSpec& d : disks) {
    DiskLayout layout;
    for (const FlatFileSpec& f : d.files) {
      if (f.m == 0 || f.n < f.m) {
        return Status::InvalidArgument(
            "BuildMultiDiskProgram: file '" + f.name + "' malformed");
      }
      const auto index = static_cast<FileIndex>(files.size());
      files.push_back(ProgramFile{f.name, f.m, f.n, f.latency_slots});
      for (std::uint32_t k = 0; k < f.m; ++k) layout.pages.push_back(index);
    }
    layout.chunks = lcm / d.relative_frequency;
    layout.chunk_size =
        (layout.pages.size() + layout.chunks - 1) / layout.chunks;
    // Pad the page list to a whole number of chunks with idle pages.
    layout.pages.resize(layout.chunks * layout.chunk_size,
                        BroadcastProgram::kIdleSlot);
    layouts.push_back(std::move(layout));
  }

  // Minor cycle j (j = 0..lcm-1): chunk (j mod C_i) of every disk, in disk
  // order.
  std::vector<FileIndex> slots;
  for (std::uint64_t j = 0; j < lcm; ++j) {
    for (const DiskLayout& layout : layouts) {
      const std::uint64_t chunk = j % layout.chunks;
      const std::uint64_t begin = chunk * layout.chunk_size;
      for (std::uint64_t k = 0; k < layout.chunk_size; ++k) {
        slots.push_back(layout.pages[begin + k]);
      }
    }
  }

  std::uint64_t minor_slots = 0;
  for (const DiskLayout& layout : layouts) minor_slots += layout.chunk_size;

  BDISK_ASSIGN_OR_RETURN(
      BroadcastProgram program,
      BroadcastProgram::Create(std::move(files), std::move(slots)));
  return MultiDiskProgram{std::move(program),
                          static_cast<std::uint32_t>(lcm), minor_slots};
}

double MeanRetrievalLatency(const BroadcastProgram& program, FileIndex file) {
  BDISK_CHECK(file < program.file_count());
  const ProgramFile& pf = program.files()[file];
  const std::uint64_t cycle = program.DataCycleLength();
  // Occurrence slots across one data cycle (block rotation guarantees any
  // m consecutive transmissions carry distinct blocks for n >= m).
  std::vector<std::uint64_t> occ;
  for (std::uint64_t t = 0; t < cycle; ++t) {
    const auto tx = program.TransmissionAt(t);
    if (tx.has_value() && tx->file == file) occ.push_back(t);
  }
  BDISK_CHECK(!occ.empty());
  // For each start slot s, completion = the m-th occurrence at or after s.
  // Sweep starts in one data cycle; occurrences extend periodically.
  double total = 0.0;
  std::size_t next = 0;  // First occurrence index with slot >= s.
  for (std::uint64_t s = 0; s < cycle; ++s) {
    while (next < occ.size() && occ[next] < s) ++next;
    const std::size_t target = next + pf.m - 1;
    const std::uint64_t completion =
        target < occ.size()
            ? occ[target]
            : occ[target - occ.size()] + cycle;  // m <= occurrences/cycle.
    total += static_cast<double>(completion - s + 1);
  }
  return total / static_cast<double>(cycle);
}

}  // namespace bdisk::broadcast
