#include "adaptive/adaptive_loop.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/zipf.h"
#include "obs/registry.h"
#include "runtime/rng_stream.h"

namespace bdisk::adaptive {

Result<AdaptiveController> AdaptiveController::Create(
    std::vector<broadcast::FlatFileSpec> files,
    broadcast::BroadcastProgram initial, AdaptiveLoopOptions options) {
  if (initial.file_count() != files.size()) {
    return Status::InvalidArgument(
        "AdaptiveController: initial program has " +
        std::to_string(initial.file_count()) + " files, expected " +
        std::to_string(files.size()));
  }
  for (std::size_t f = 0; f < files.size(); ++f) {
    const broadcast::ProgramFile& pf = initial.files()[f];
    if (pf.name != files[f].name || pf.m != files[f].m ||
        pf.n != files[f].n) {
      return Status::InvalidArgument(
          "AdaptiveController: initial program file " + std::to_string(f) +
          " ('" + pf.name + "') does not match the canonical population "
          "entry ('" + files[f].name + "')");
    }
  }
  DemandEstimator estimator(files.size(), options.decay);
  BDISK_ASSIGN_OR_RETURN(ProgramOptimizer optimizer,
                         ProgramOptimizer::Create(files, options.optimizer));
  HotSwapCoordinator coordinator(std::move(initial));
  return AdaptiveController(std::move(estimator), std::move(optimizer),
                            std::move(coordinator), std::move(options));
}

Result<bool> AdaptiveController::EndInterval(
    const std::vector<std::uint64_t>& counts,
    std::uint64_t interval_end_slot, runtime::ThreadPool* pool) {
  if (counts.size() != estimator_.file_count()) {
    return Status::InvalidArgument(
        "AdaptiveController: counts for " + std::to_string(counts.size()) +
        " files, expected " + std::to_string(estimator_.file_count()));
  }
  std::uint64_t interval_total = 0;
  for (std::uint64_t c : counts) interval_total += c;
  estimator_.ObserveCounts(counts);
  estimator_.FoldInterval();
  obs::GlobalRegistry().GetCounter("adaptive.intervals")->Add();
  if (interval_total < options_.min_interval_requests) return false;

  // One timer per swap decision (optimize + evaluate + maybe schedule).
  obs::ScopedPhaseTimer timer(obs::GlobalRegistry().GetHistogram(
      "phase.swap_decision_us", obs::PhaseTimerBoundsUs()));
  const std::vector<double> demand = estimator_.Shares();
  BDISK_ASSIGN_OR_RETURN(OptimizedProgram candidate,
                         optimizer_.Optimize(demand, pool));
  BDISK_ASSIGN_OR_RETURN(
      ProgramScore incumbent,
      EvaluateProgram(coordinator_.current_program(), demand));
  if (candidate.score.expected_mean_delay >=
      incumbent.expected_mean_delay * (1.0 - options_.improvement_threshold)) {
    return false;
  }
  BDISK_ASSIGN_OR_RETURN(std::uint64_t swap_slot,
                         coordinator_.ScheduleSwap(
                             std::move(candidate.program),
                             interval_end_slot));
  (void)swap_slot;
  obs::GlobalRegistry().GetCounter("adaptive.swaps")->Add();
  return true;
}

std::vector<sim::ClientRequest> GenerateDriftingRequests(
    const DriftingZipfWorkload& workload, std::size_t file_count) {
  BDISK_CHECK(file_count > 0);
  BDISK_CHECK(workload.arrival_horizon > 0);
  const ZipfDistribution zipf(file_count, workload.theta);
  const std::uint64_t spacing =
      std::max<std::uint64_t>(1, workload.arrival_horizon / std::max<
                                     std::uint64_t>(1, workload.requests));
  std::vector<sim::ClientRequest> requests(workload.requests);
  for (std::uint64_t k = 0; k < workload.requests; ++k) {
    Rng rng = runtime::StreamRng(workload.seed, k);
    const std::uint64_t base = k * workload.arrival_horizon /
                               std::max<std::uint64_t>(1, workload.requests);
    const std::uint64_t arrival = std::min(base + rng.Uniform(spacing),
                                           workload.arrival_horizon - 1);
    const std::size_t rank = zipf.Sample(rng.UniformDouble());
    // The drift: at flip_slot, yesterday's ranking reverses.
    const std::size_t file =
        arrival < workload.flip_slot ? rank : file_count - 1 - rank;
    requests[k].file = static_cast<broadcast::FileIndex>(file);
    requests[k].start_slot = arrival;
    requests[k].deadline_slots = 0;
    requests[k].model = broadcast::ClientModel::kIda;
  }
  return requests;
}

Result<AdaptiveExperimentResult> RunAdaptiveExperiment(
    const std::vector<broadcast::FlatFileSpec>& files,
    const DriftingZipfWorkload& workload, std::uint64_t interval_slots,
    const AdaptiveLoopOptions& options, double loss_probability,
    std::uint64_t fault_seed, runtime::ThreadPool* pool,
    const broadcast::BroadcastProgram* initial,
    const faults::ChannelModel* channel,
    std::uint64_t snapshot_interval_slots,
    const obs::TraceOptions* trace_options,
    const std::function<Status(const obs::Timeline& timeline, bool adaptive)>&
        on_replay_timeline) {
  if (interval_slots == 0) {
    return Status::InvalidArgument(
        "RunAdaptiveExperiment: interval_slots must be positive");
  }
  if (workload.requests == 0) {
    return Status::InvalidArgument(
        "RunAdaptiveExperiment: workload has no requests");
  }

  const std::vector<sim::ClientRequest> requests =
      GenerateDriftingRequests(workload, files.size());

  // The static baseline: the caller's program, or — when none is given —
  // one seeded from *pre-flip* demand, so it is the best program for
  // yesterday's traffic rather than a strawman.
  broadcast::BroadcastProgram baseline;
  if (initial != nullptr) {
    baseline = *initial;
  } else {
    const ZipfDistribution zipf(files.size(), workload.theta);
    BDISK_ASSIGN_OR_RETURN(
        ProgramOptimizer optimizer,
        ProgramOptimizer::Create(files, options.optimizer));
    BDISK_ASSIGN_OR_RETURN(OptimizedProgram seeded,
                           optimizer.Optimize(zipf.Probabilities(), pool));
    baseline = std::move(seeded.program);
  }

  BDISK_ASSIGN_OR_RETURN(
      AdaptiveController controller,
      AdaptiveController::Create(files, baseline, options));

  // Walk the controller over the trace, one interval at a time. Decisions
  // consume only arrivals, so the timeline is causal: the program at slot
  // t depends only on requests issued before t's interval.
  const std::uint64_t intervals =
      (workload.arrival_horizon + interval_slots - 1) / interval_slots;
  std::vector<std::vector<std::uint64_t>> interval_counts(
      intervals, std::vector<std::uint64_t>(files.size(), 0));
  for (const sim::ClientRequest& req : requests) {
    const std::uint64_t i =
        std::min<std::uint64_t>(intervals - 1,
                                req.start_slot / interval_slots);
    ++interval_counts[i][req.file];
  }
  std::unique_ptr<obs::TraceSink> static_trace;
  std::unique_ptr<obs::TraceSink> adaptive_trace;
  if (trace_options != nullptr) {
    static_trace = std::make_unique<obs::TraceSink>(*trace_options);
    adaptive_trace = std::make_unique<obs::TraceSink>(*trace_options);
  }
  for (std::uint64_t i = 0; i < intervals; ++i) {
    auto swapped =
        controller.EndInterval(interval_counts[i], (i + 1) * interval_slots,
                               pool);
    if (!swapped.ok()) return swapped.status();
    if (adaptive_trace != nullptr) {
      // One swap-decision span per interval: what the controller decided
      // and, on a swap, where the new epoch takes effect.
      obs::TraceSpan span;
      span.kind = obs::TraceSpanKind::kSwapDecision;
      span.request_id = i;
      span.file_name = "controller";
      span.start_slot = i * interval_slots;
      span.end_slot = (i + 1) * interval_slots;
      span.completed = *swapped;
      span.trigger = obs::kTraceSwap;
      if (*swapped) {
        const auto& epochs = controller.schedule().epochs();
        span.events.push_back(obs::TraceEvent{
            epochs.back().start_slot, obs::TraceEventKind::kEpoch,
            static_cast<std::uint32_t>(epochs.size() - 1), 0});
      }
      adaptive_trace->Record(std::move(span));
    }
  }

  // Replay the identical trace against both timelines over the same fault
  // realization: the caller's channel model when given (a pure trace, so
  // both simulators see the identical realization by construction), else a
  // Bernoulli model from loss_probability / fault_seed (one model, Reset()
  // by each Simulator).
  const std::uint64_t tail =
      8 * std::max(baseline.DataCycleLength(),
                   controller.schedule().MaxDataCycleLength());
  const std::uint64_t horizon = workload.arrival_horizon + tail;
  sim::BernoulliFaultModel faults(loss_probability, fault_seed);

  // The replay horizon is only known here, so the snapshot timelines are
  // owned by the result rather than passed in by the caller.
  std::unique_ptr<obs::Timeline> static_timeline;
  std::unique_ptr<obs::Timeline> adaptive_timeline;
  if (snapshot_interval_slots > 0) {
    static_timeline = std::make_unique<obs::Timeline>(
        snapshot_interval_slots, horizon);
    adaptive_timeline = std::make_unique<obs::Timeline>(
        snapshot_interval_slots, horizon);
  }

  sim::Simulator static_sim =
      channel != nullptr ? sim::Simulator(baseline, *channel, horizon)
                         : sim::Simulator(baseline, &faults, horizon);
  BDISK_ASSIGN_OR_RETURN(sim::SimulationMetrics static_metrics,
                         static_sim.RunRequests(requests, pool,
                                                static_timeline.get(),
                                                static_trace.get()));
  if (on_replay_timeline && static_timeline != nullptr) {
    BDISK_RETURN_NOT_OK(on_replay_timeline(*static_timeline, false));
  }

  sim::Simulator adaptive_sim =
      channel != nullptr
          ? sim::Simulator(controller.schedule(), *channel, horizon)
          : sim::Simulator(controller.schedule(), &faults, horizon);
  BDISK_ASSIGN_OR_RETURN(sim::SimulationMetrics adaptive_metrics,
                         adaptive_sim.RunRequests(requests, pool,
                                                  adaptive_timeline.get(),
                                                  adaptive_trace.get()));
  if (on_replay_timeline && adaptive_timeline != nullptr) {
    BDISK_RETURN_NOT_OK(on_replay_timeline(*adaptive_timeline, true));
  }

  return AdaptiveExperimentResult{std::move(static_metrics),
                                  std::move(adaptive_metrics),
                                  controller.swap_count(),
                                  controller.schedule(),
                                  std::move(static_timeline),
                                  std::move(adaptive_timeline),
                                  std::move(static_trace),
                                  std::move(adaptive_trace)};
}

}  // namespace bdisk::adaptive
