#include "adaptive/hot_swap.h"

#include <utility>
#include <vector>

namespace bdisk::adaptive {

HotSwapCoordinator::HotSwapCoordinator(broadcast::BroadcastProgram initial)
    : schedule_(sim::EpochSchedule::Single(std::move(initial))) {}

Result<std::uint64_t> HotSwapCoordinator::ScheduleSwap(
    broadcast::BroadcastProgram next, std::uint64_t not_before_slot) {
  const sim::ProgramEpoch& last = schedule_.epochs().back();
  const std::uint64_t period = last.program.period();
  // First period boundary at or after not_before_slot, strictly after the
  // current epoch's start.
  std::uint64_t offset = not_before_slot > last.start_slot
                             ? not_before_slot - last.start_slot
                             : 1;
  offset = (offset + period - 1) / period * period;
  const std::uint64_t swap_slot = last.start_slot + offset;

  std::vector<sim::ProgramEpoch> epochs = schedule_.epochs();
  epochs.push_back(sim::ProgramEpoch{swap_slot, std::move(next)});
  auto updated = sim::EpochSchedule::Create(std::move(epochs));
  if (!updated.ok()) {
    return updated.status().WithContext("HotSwapCoordinator");
  }
  schedule_ = std::move(*updated);
  return swap_slot;
}

}  // namespace bdisk::adaptive
