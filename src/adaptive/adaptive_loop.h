/// \file adaptive_loop.h
/// \brief The closed adaptation loop: demand in, epoch schedule out.
///
/// AdaptiveController chains the three adaptive components — estimator,
/// optimizer, hot-swap coordinator — into the production control loop: at
/// every adaptation-interval boundary it folds the interval's request
/// counts, re-optimizes against the decayed demand estimate, and schedules
/// a hot swap when (and only when) the candidate's exact expected mean
/// delay beats the incumbent's by a configurable margin.
///
/// Determinism contract: the controller consumes only request *arrivals*
/// (not retrieval outcomes), so the resulting epoch schedule is a pure
/// function of the request trace and options — independent of thread
/// count, and causally valid: the program governing slot t depends only on
/// requests issued before t's interval. This is what lets the adaptive
/// experiment first derive the full schedule and then replay the trace
/// through the sharded simulator under the usual bit-exact parallelism
/// contract.
///
/// DriftingZipfWorkload + GenerateDriftingRequests model the demand shift
/// the subsystem exists for: Zipf(theta)-skewed requests whose popularity
/// ranking *reverses* at `flip_slot` (yesterday's cold files are today's
/// hot ones). RunAdaptiveExperiment replays one such trace against the
/// static initial program and against the adaptive schedule and reports
/// both metric sets.

#ifndef BDISK_ADAPTIVE_ADAPTIVE_LOOP_H_
#define BDISK_ADAPTIVE_ADAPTIVE_LOOP_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "adaptive/demand_estimator.h"
#include "adaptive/hot_swap.h"
#include "adaptive/program_optimizer.h"
#include "bdisk/flat_builder.h"
#include "common/status.h"
#include "faults/channel_model.h"
#include "obs/snapshot.h"
#include "obs/trace.h"
#include "sim/fault_model.h"
#include "sim/metrics.h"
#include "sim/simulation.h"

namespace bdisk::adaptive {

/// \brief Control-loop tuning.
struct AdaptiveLoopOptions {
  /// Estimator decay per adaptation interval.
  double decay = 0.3;
  /// Re-optimize only after at least this many requests in an interval
  /// (noise gate).
  std::uint64_t min_interval_requests = 16;
  /// Swap only if the candidate's expected mean delay undercuts the
  /// incumbent's (under the same demand estimate) by this fraction.
  double improvement_threshold = 0.05;
  /// Candidate search options.
  OptimizerOptions optimizer;
};

/// \brief Estimator -> optimizer -> hot-swap, one interval at a time.
class AdaptiveController {
 public:
  /// \param files    canonical file population (geometry fixed for the
  ///                 lifetime of the controller).
  /// \param initial  program governing from slot 0 (must match `files`).
  static Result<AdaptiveController> Create(
      std::vector<broadcast::FlatFileSpec> files,
      broadcast::BroadcastProgram initial, AdaptiveLoopOptions options = {});

  /// Closes one adaptation interval: folds `counts` (requests per file
  /// observed during the interval) into the estimator, re-optimizes, and —
  /// if the improvement clears the threshold — schedules a hot swap at the
  /// first period boundary at or after `interval_end_slot`. Returns true
  /// iff a swap was scheduled.
  Result<bool> EndInterval(const std::vector<std::uint64_t>& counts,
                           std::uint64_t interval_end_slot,
                           runtime::ThreadPool* pool = nullptr);

  const sim::EpochSchedule& schedule() const {
    return coordinator_.schedule();
  }
  const DemandEstimator& estimator() const { return estimator_; }
  std::size_t swap_count() const { return coordinator_.epoch_count() - 1; }

 private:
  AdaptiveController(DemandEstimator estimator, ProgramOptimizer optimizer,
                     HotSwapCoordinator coordinator,
                     AdaptiveLoopOptions options)
      : estimator_(std::move(estimator)), optimizer_(std::move(optimizer)),
        coordinator_(std::move(coordinator)), options_(std::move(options)) {}

  DemandEstimator estimator_;
  ProgramOptimizer optimizer_;
  HotSwapCoordinator coordinator_;
  AdaptiveLoopOptions options_;
};

/// \brief Zipf-skewed request trace whose popularity ranking reverses at
/// `flip_slot`.
struct DriftingZipfWorkload {
  /// Total requests, spread evenly over [0, arrival_horizon).
  std::uint64_t requests = 20000;
  /// Zipf skew parameter.
  double theta = 0.95;
  /// Arrivals occupy [0, arrival_horizon).
  std::uint64_t arrival_horizon = 100000;
  /// Requests arriving at or after this slot draw from the *reversed*
  /// popularity ranking.
  std::uint64_t flip_slot = 50000;
  /// Base seed; request k draws from runtime::StreamRng(seed, k), so the
  /// trace is independent of generation order.
  std::uint64_t seed = 1;
};

/// \brief Generates the request trace. Arrivals are near-uniformly spread
/// over [0, arrival_horizon) but per-request jitter makes them not
/// strictly sorted; consumers must bin or sort by start_slot themselves.
std::vector<sim::ClientRequest> GenerateDriftingRequests(
    const DriftingZipfWorkload& workload, std::size_t file_count);

/// \brief Static-vs-adaptive comparison on one drifting trace.
struct AdaptiveExperimentResult {
  /// Replay against the initial program, never re-optimized.
  sim::SimulationMetrics static_metrics;
  /// Replay against the controller's epoch schedule.
  sim::SimulationMetrics adaptive_metrics;
  /// Hot swaps the controller scheduled.
  std::size_t swaps = 0;
  /// The adaptive timeline (for inspection / further replay).
  sim::EpochSchedule schedule;
  /// Snapshot timelines of the two replays (obs/snapshot.h), populated iff
  /// the experiment was run with a nonzero snapshot interval. The replay
  /// horizon is computed inside the experiment, so the timelines are built
  /// here rather than passed in.
  std::unique_ptr<obs::Timeline> static_timeline;
  std::unique_ptr<obs::Timeline> adaptive_timeline;
  /// Causal trace sinks of the two replays (obs/trace.h), populated iff
  /// trace options were supplied. The adaptive sink additionally carries
  /// one swap-decision span per controller interval (kind kSwapDecision,
  /// request_id = interval index, completed = swapped), recorded before
  /// the replay's retrieval spans.
  std::unique_ptr<obs::TraceSink> static_trace;
  std::unique_ptr<obs::TraceSink> adaptive_trace;
};

/// \brief Runs the full experiment: walks the controller over
/// `interval_slots`-sized windows of the trace, then replays the identical
/// trace against both timelines over a fault realization drawn from
/// `loss_probability` / `fault_seed` — or, when `channel` is non-null,
/// over that channel model's counter-based trace (faults/channel_model.h),
/// so the adaptive replay composes with the full fault-injection taxonomy
/// (bursty loss, corruption, outages).
///
/// `initial` (when non-null) is both the static baseline and the
/// controller's starting program — e.g. the planner's pinwheel program for
/// `bdisk_planner --adaptive`. When null, the initial program is seeded
/// from the optimizer under *pre-flip* demand, so the static baseline is
/// well tuned for yesterday's traffic, not a strawman.
/// A nonzero `snapshot_interval_slots` additionally records both replays
/// into snapshot timelines (AdaptiveExperimentResult::*_timeline) at that
/// sim-clock granularity, for streaming via obs::WriteSnapshotStream.
///
/// Non-null `trace_options` captures both replays' causal spans into
/// AdaptiveExperimentResult::static_trace / adaptive_trace, plus one
/// swap-decision span per controller interval into the adaptive sink.
/// `on_replay_timeline` (when set, and snapshotting is on) is invoked with
/// each replay's finished timeline right after that replay completes —
/// before the other replay runs — so callers can stream per-replay state
/// (e.g. emit then reset the global metric registry) without the two
/// replays bleeding into each other; a non-OK return aborts the
/// experiment.
Result<AdaptiveExperimentResult> RunAdaptiveExperiment(
    const std::vector<broadcast::FlatFileSpec>& files,
    const DriftingZipfWorkload& workload, std::uint64_t interval_slots,
    const AdaptiveLoopOptions& options, double loss_probability,
    std::uint64_t fault_seed, runtime::ThreadPool* pool = nullptr,
    const broadcast::BroadcastProgram* initial = nullptr,
    const faults::ChannelModel* channel = nullptr,
    std::uint64_t snapshot_interval_slots = 0,
    const obs::TraceOptions* trace_options = nullptr,
    const std::function<Status(const obs::Timeline& timeline, bool adaptive)>&
        on_replay_timeline = {});

}  // namespace bdisk::adaptive

#endif  // BDISK_ADAPTIVE_ADAPTIVE_LOOP_H_
