/// \file hot_swap.h
/// \brief Atomic program transitions for a live broadcast channel.
///
/// The coordinator owns the channel's epoch timeline (sim/epoch.h). A swap
/// request names the replacement program and the earliest slot it may take
/// effect; the coordinator aligns the transition to the next period
/// boundary of the outgoing program — the channel finishes a whole period,
/// then every subsequent slot is governed by the new program. Validation
/// (delegated to EpochSchedule::Create) rejects any replacement that
/// changes file geometry, so the hot-swap guarantee holds by construction:
///
///   In-flight IDA retrievals spanning the switch still reconstruct.
///   Coded blocks depend only on (m, n, block size, contents) — all
///   epoch-invariant — so a client that collected j < m blocks under the
///   old program completes with m - j blocks heard under the new one, and
///   the reconstruction is bit-identical to a from-scratch retrieval under
///   either program (clients retain their block indices keyed by program
///   epoch; see ReconstructingClient::Offer).
///
/// sim::BroadcastServer and sim::Simulator consume the coordinator's
/// schedule directly: constructing them over `schedule()` *is* the atomic
/// transition — there is no window in which a slot is governed by a
/// half-installed program.

#ifndef BDISK_ADAPTIVE_HOT_SWAP_H_
#define BDISK_ADAPTIVE_HOT_SWAP_H_

#include <cstdint>

#include "bdisk/program.h"
#include "common/status.h"
#include "sim/epoch.h"

namespace bdisk::adaptive {

/// \brief Owner of a broadcast channel's epoch timeline.
class HotSwapCoordinator {
 public:
  /// Starts the timeline with `initial` governing from slot 0.
  explicit HotSwapCoordinator(broadcast::BroadcastProgram initial);

  /// Appends an epoch running `next`, effective at the first period
  /// boundary of the current (last) program at or after `not_before_slot`
  /// — and strictly after the current epoch's start. Fails (leaving the
  /// timeline unchanged) if `next` changes file geometry. Returns the
  /// swap slot.
  Result<std::uint64_t> ScheduleSwap(broadcast::BroadcastProgram next,
                                     std::uint64_t not_before_slot);

  /// The timeline so far (last epoch extends forever).
  const sim::EpochSchedule& schedule() const { return schedule_; }

  /// Program governing the channel from the latest swap on.
  const broadcast::BroadcastProgram& current_program() const {
    return schedule_.epochs().back().program;
  }

  std::size_t epoch_count() const { return schedule_.epoch_count(); }

 private:
  sim::EpochSchedule schedule_;
};

}  // namespace bdisk::adaptive

#endif  // BDISK_ADAPTIVE_HOT_SWAP_H_
