#include "adaptive/demand_estimator.h"

#include "common/check.h"

namespace bdisk::adaptive {

DemandEstimator::DemandEstimator(std::size_t file_count, double decay)
    : decay_(decay),
      interval_counts_(file_count, 0),
      decayed_(file_count, 0.0) {
  BDISK_CHECK(file_count > 0);
  BDISK_CHECK(decay >= 0.0 && decay < 1.0);
}

void DemandEstimator::Observe(broadcast::FileIndex file, std::uint64_t count) {
  BDISK_CHECK(file < interval_counts_.size());
  interval_counts_[file] += count;
  total_observed_ += count;
}

void DemandEstimator::ObserveCounts(const std::vector<std::uint64_t>& counts) {
  BDISK_CHECK(counts.size() == interval_counts_.size());
  for (std::size_t f = 0; f < counts.size(); ++f) {
    interval_counts_[f] += counts[f];
    total_observed_ += counts[f];
  }
}

void DemandEstimator::FoldInterval() {
  for (std::size_t f = 0; f < decayed_.size(); ++f) {
    decayed_[f] = decayed_[f] * decay_ +
                  static_cast<double>(interval_counts_[f]);
    interval_counts_[f] = 0;
  }
}

std::vector<double> DemandEstimator::Shares() const {
  const std::size_t n = decayed_.size();
  // The uniform floor: a file with zero observed demand still receives the
  // weight of one request per file-count, keeping sqrt-rule frequencies
  // positive.
  std::vector<double> shares(n, 0.0);
  double total = 0.0;
  for (std::size_t f = 0; f < n; ++f) {
    shares[f] = decayed_[f] + static_cast<double>(interval_counts_[f]) +
                1.0 / static_cast<double>(n);
    total += shares[f];
  }
  for (double& s : shares) s /= total;
  return shares;
}

}  // namespace bdisk::adaptive
