/// \file program_optimizer.h
/// \brief Demand-driven broadcast-program re-optimization.
///
/// Given a demand estimate (normalized per-file access shares), the
/// optimizer derives target broadcast frequencies from the square-root
/// rule — the classic mean-delay optimum for broadcast media assigns file
/// i a frequency proportional to sqrt(p_i / m_i) (access probability over
/// transmission cost) — quantizes them onto a small set of multi-disk
/// frequency classes, builds one candidate program per quantization, and
/// scores every candidate with the *exact* analyses from the bdisk layer:
///
/// * expected mean delay  = sum_i p_i * MeanRetrievalLatency(program, i)
///   (closed form over occurrence lists, fault-free), and
/// * worst-case latency   = max_i DelayAnalyzer::WorstCaseLatency(i, 0)
///   (the delay-analysis refinement: a candidate that optimizes the hot
///   tail must not starve cold files beyond `worst_case_cap_slots`).
///
/// Candidates are independent, so they are evaluated in parallel across a
/// runtime::ThreadPool; selection is deterministic (score, then candidate
/// index) and therefore identical at any thread count.
///
/// Every produced program keeps the canonical file order and geometry
/// (name, m, n) of the optimizer's file list — the hot-swap requirement
/// (sim/epoch.h) that makes programs from successive re-optimizations
/// mutually swappable.

#ifndef BDISK_ADAPTIVE_PROGRAM_OPTIMIZER_H_
#define BDISK_ADAPTIVE_PROGRAM_OPTIMIZER_H_

#include <cstdint>
#include <vector>

#include "bdisk/flat_builder.h"
#include "bdisk/program.h"
#include "common/status.h"

namespace bdisk::runtime {
class ThreadPool;
}  // namespace bdisk::runtime

namespace bdisk::adaptive {

/// \brief Optimizer search options.
struct OptimizerOptions {
  /// Frequency-class counts to try (one multi-disk candidate each; 1 class
  /// is the flat baseline).
  std::vector<std::uint32_t> class_counts{1, 2, 3, 4};
  /// Fastest relative frequency a class may spin at.
  std::uint32_t max_relative_frequency = 8;
  /// Reject candidates whose fault-free worst-case latency (any file)
  /// exceeds this many slots (0 = no cap).
  std::uint64_t worst_case_cap_slots = 0;
};

/// \brief Exact scores of one program under a demand estimate.
struct ProgramScore {
  /// Demand-weighted mean retrieval latency in slots (fault-free, exact).
  double expected_mean_delay = 0.0;
  /// Max over files of the fault-free worst-case latency in slots.
  std::uint64_t worst_case_latency = 0;
};

/// \brief A chosen candidate program plus its planning artifacts.
struct OptimizedProgram {
  broadcast::BroadcastProgram program;
  ProgramScore score;
  /// Number of frequency classes of the winning candidate.
  std::uint32_t class_count = 0;
  /// Index of the winning candidate in the options' class_counts order.
  std::size_t candidate_index = 0;
};

/// \brief Scores an existing program against a demand estimate (the same
/// metric Optimize() minimizes; used to decide whether a swap is worth it).
Result<ProgramScore> EvaluateProgram(const broadcast::BroadcastProgram& program,
                                     const std::vector<double>& demand);

/// \brief Demand-to-program optimizer over a fixed file population.
class ProgramOptimizer {
 public:
  /// Validates the file list: non-empty, unique names, m >= 1, n >= m.
  static Result<ProgramOptimizer> Create(
      std::vector<broadcast::FlatFileSpec> files,
      OptimizerOptions options = {});

  /// Builds and scores one candidate per class count and returns the best
  /// (lowest expected mean delay; ties break toward the lower candidate
  /// index). `demand` must hold one normalized share per file. With a
  /// non-null pool, candidates are evaluated concurrently; the result is
  /// identical at any thread count.
  Result<OptimizedProgram> Optimize(const std::vector<double>& demand,
                                    runtime::ThreadPool* pool = nullptr) const;

  const std::vector<broadcast::FlatFileSpec>& files() const { return files_; }
  const OptimizerOptions& options() const { return options_; }

 private:
  ProgramOptimizer(std::vector<broadcast::FlatFileSpec> files,
                   OptimizerOptions options)
      : files_(std::move(files)), options_(std::move(options)) {}

  /// Builds the candidate for `class_count` frequency classes: square-root
  /// frequencies quantized to geometric levels, multi-disk layout, file
  /// indices remapped back to canonical order.
  Result<broadcast::BroadcastProgram> BuildCandidate(
      const std::vector<double>& demand, std::uint32_t class_count) const;

  std::vector<broadcast::FlatFileSpec> files_;
  OptimizerOptions options_;
};

}  // namespace bdisk::adaptive

#endif  // BDISK_ADAPTIVE_PROGRAM_OPTIMIZER_H_
