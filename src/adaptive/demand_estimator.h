/// \file demand_estimator.h
/// \brief Online per-file demand estimation with exponential decay.
///
/// The adaptation loop's sensor: the broadcast operator cannot observe
/// clients directly (the channel is one-way), but it can observe the
/// *request stream* that reaches it out of band — subscription changes,
/// uplinked telemetry, or, in simulation, the generated workload trace.
/// The estimator folds per-file request counts into exponentially decayed
/// frequency estimates, balancing reactivity to drift against noise
/// immunity.
///
/// Determinism: within an interval counts accumulate in integers (exactly
/// order-independent); decay multiplies by a fixed factor once per
/// interval. For a given observation sequence the estimate is a pure
/// function of the inputs — no clock, no RNG.

#ifndef BDISK_ADAPTIVE_DEMAND_ESTIMATOR_H_
#define BDISK_ADAPTIVE_DEMAND_ESTIMATOR_H_

#include <cstdint>
#include <vector>

#include "bdisk/program.h"

namespace bdisk::adaptive {

/// \brief Decayed per-file request-frequency estimator.
class DemandEstimator {
 public:
  /// \param file_count number of files tracked.
  /// \param decay      multiplier applied to history at each FoldInterval
  ///                   (0 = only the last interval matters, values close
  ///                   to 1 = long memory). Must be in [0, 1).
  DemandEstimator(std::size_t file_count, double decay);

  /// Records `count` requests for `file` within the current interval.
  void Observe(broadcast::FileIndex file, std::uint64_t count = 1);

  /// Records a whole interval's per-file counts at once.
  void ObserveCounts(const std::vector<std::uint64_t>& counts);

  /// Closes the current interval: history *= decay, then the interval's
  /// integer counts are folded in.
  void FoldInterval();

  /// Normalized demand estimate per file (sums to 1). Files never observed
  /// share a uniform floor so no file's frequency collapses to zero —
  /// every file must still appear in the broadcast program. Includes the
  /// current (unfolded) interval's counts.
  std::vector<double> Shares() const;

  /// Total requests observed since construction (undecayed; diagnostics).
  std::uint64_t total_observed() const { return total_observed_; }

  std::size_t file_count() const { return interval_counts_.size(); }

 private:
  double decay_;
  std::vector<std::uint64_t> interval_counts_;  // Current interval, exact.
  std::vector<double> decayed_;                 // Folded history.
  std::uint64_t total_observed_ = 0;
};

}  // namespace bdisk::adaptive

#endif  // BDISK_ADAPTIVE_DEMAND_ESTIMATOR_H_
