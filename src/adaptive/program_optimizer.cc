#include "adaptive/program_optimizer.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "bdisk/delay_analysis.h"
#include "bdisk/multi_disk.h"
#include "common/check.h"
#include "runtime/parallel_for.h"
#include "runtime/thread_pool.h"

namespace bdisk::adaptive {

namespace {

/// Rebuilds `program` with its files permuted into `canonical` order (and
/// the canonical latency vectors), matching by name. The multi-disk builder
/// orders files by disk; hot-swap compatibility requires the canonical
/// index order, under which a file keeps its ida::FileId across epochs.
Result<broadcast::BroadcastProgram> RemapToCanonicalOrder(
    const broadcast::BroadcastProgram& program,
    const std::vector<broadcast::FlatFileSpec>& canonical) {
  std::unordered_map<std::string, broadcast::FileIndex> index_of;
  std::vector<broadcast::ProgramFile> files;
  files.reserve(canonical.size());
  for (std::size_t f = 0; f < canonical.size(); ++f) {
    index_of.emplace(canonical[f].name,
                     static_cast<broadcast::FileIndex>(f));
    files.push_back(broadcast::ProgramFile{canonical[f].name, canonical[f].m,
                                           canonical[f].n,
                                           canonical[f].latency_slots});
  }
  std::vector<broadcast::FileIndex> slots;
  slots.reserve(program.period());
  for (broadcast::FileIndex built : program.slots()) {
    if (built == broadcast::BroadcastProgram::kIdleSlot) {
      slots.push_back(broadcast::BroadcastProgram::kIdleSlot);
      continue;
    }
    const auto it = index_of.find(program.files()[built].name);
    if (it == index_of.end()) {
      return Status::Internal(
          "ProgramOptimizer: built program names unknown file '" +
          program.files()[built].name + "'");
    }
    slots.push_back(it->second);
  }
  return broadcast::BroadcastProgram::Create(std::move(files),
                                             std::move(slots));
}

}  // namespace

Result<ProgramScore> EvaluateProgram(const broadcast::BroadcastProgram& program,
                                     const std::vector<double>& demand) {
  if (demand.size() != program.file_count()) {
    return Status::InvalidArgument(
        "EvaluateProgram: demand has " + std::to_string(demand.size()) +
        " entries for " + std::to_string(program.file_count()) + " files");
  }
  ProgramScore score;
  const broadcast::DelayAnalyzer analyzer(program);
  for (broadcast::FileIndex f = 0; f < program.file_count(); ++f) {
    score.expected_mean_delay +=
        demand[f] * broadcast::MeanRetrievalLatency(program, f);
    BDISK_ASSIGN_OR_RETURN(
        std::uint64_t worst,
        analyzer.WorstCaseLatency(f, 0, broadcast::ClientModel::kIda));
    score.worst_case_latency = std::max(score.worst_case_latency, worst);
  }
  return score;
}

Result<ProgramOptimizer> ProgramOptimizer::Create(
    std::vector<broadcast::FlatFileSpec> files, OptimizerOptions options) {
  if (files.empty()) {
    return Status::InvalidArgument("ProgramOptimizer: no files");
  }
  if (options.class_counts.empty()) {
    return Status::InvalidArgument("ProgramOptimizer: no candidate class "
                                   "counts");
  }
  if (options.max_relative_frequency == 0) {
    return Status::InvalidArgument(
        "ProgramOptimizer: max_relative_frequency must be positive");
  }
  std::unordered_map<std::string, std::size_t> seen;
  for (std::size_t f = 0; f < files.size(); ++f) {
    if (files[f].m == 0 || files[f].n < files[f].m) {
      return Status::InvalidArgument("ProgramOptimizer: file '" +
                                     files[f].name + "' malformed (m=" +
                                     std::to_string(files[f].m) + ", n=" +
                                     std::to_string(files[f].n) + ")");
    }
    if (!seen.emplace(files[f].name, f).second) {
      return Status::InvalidArgument(
          "ProgramOptimizer: duplicate file name '" + files[f].name + "'");
    }
  }
  return ProgramOptimizer(std::move(files), std::move(options));
}

Result<broadcast::BroadcastProgram> ProgramOptimizer::BuildCandidate(
    const std::vector<double>& demand, std::uint32_t class_count) const {
  // Square-root-rule targets: frequency proportional to sqrt(p_i / m_i).
  std::vector<double> target(files_.size());
  double max_target = 0.0;
  for (std::size_t f = 0; f < files_.size(); ++f) {
    target[f] = std::sqrt(std::max(demand[f], 0.0) /
                          static_cast<double>(files_[f].m));
    max_target = std::max(max_target, target[f]);
  }
  if (max_target <= 0.0) max_target = 1.0;

  // Geometric frequency levels, fastest first: 2^(k-1), ..., 2, 1 (capped).
  std::vector<std::uint32_t> level_freq(class_count);
  for (std::uint32_t c = 0; c < class_count; ++c) {
    const std::uint32_t shift = class_count - 1 - c;
    level_freq[c] = shift >= 31
                        ? options_.max_relative_frequency
                        : std::min<std::uint32_t>(
                              1u << shift, options_.max_relative_frequency);
  }

  // Nearest level in log-frequency space; canonical file order within each
  // disk keeps the construction deterministic.
  std::vector<broadcast::DiskSpec> disks(class_count);
  for (std::uint32_t c = 0; c < class_count; ++c) {
    disks[c].relative_frequency = level_freq[c];
  }
  const double fastest = static_cast<double>(level_freq.front());
  for (std::size_t f = 0; f < files_.size(); ++f) {
    const double ideal = fastest * target[f] / max_target;
    std::uint32_t best_level = class_count - 1;  // Zero demand: slowest.
    if (ideal > 0.0) {
      double best_dist = 0.0;
      for (std::uint32_t c = 0; c < class_count; ++c) {
        const double dist = std::fabs(std::log(ideal) -
                                      std::log(static_cast<double>(
                                          level_freq[c])));
        if (c == 0 || dist < best_dist) {
          best_dist = dist;
          best_level = c;
        }
      }
    }
    disks[best_level].files.push_back(files_[f]);
  }
  // Drop empty disks (the builder requires every disk to hold a file).
  std::vector<broadcast::DiskSpec> populated;
  for (broadcast::DiskSpec& d : disks) {
    if (!d.files.empty()) populated.push_back(std::move(d));
  }
  BDISK_ASSIGN_OR_RETURN(broadcast::MultiDiskProgram built,
                         broadcast::BuildMultiDiskProgram(populated));
  return RemapToCanonicalOrder(built.program, files_);
}

Result<OptimizedProgram> ProgramOptimizer::Optimize(
    const std::vector<double>& demand, runtime::ThreadPool* pool) const {
  if (demand.size() != files_.size()) {
    return Status::InvalidArgument(
        "ProgramOptimizer: demand has " + std::to_string(demand.size()) +
        " entries for " + std::to_string(files_.size()) + " files");
  }

  // Build and score every candidate; candidates are independent, so shard
  // them across the pool. Failures are kept per candidate and judged
  // serially afterwards — selection is identical at any thread count.
  const std::size_t candidates = options_.class_counts.size();
  std::vector<Result<OptimizedProgram>> scored(
      candidates, Status::Internal("ProgramOptimizer: candidate not built"));
  runtime::ParallelFor(
      pool, candidates, runtime::ShardCountFor(pool, candidates),
      [&](unsigned, runtime::ShardRange range) {
        for (std::uint64_t c = range.begin; c < range.end; ++c) {
          const std::uint32_t k = options_.class_counts[c];
          auto program = BuildCandidate(demand, k);
          if (!program.ok()) {
            scored[c] = program.status();
            continue;
          }
          auto score = EvaluateProgram(*program, demand);
          if (!score.ok()) {
            scored[c] = score.status();
            continue;
          }
          scored[c] = OptimizedProgram{std::move(*program), *score, k,
                                       static_cast<std::size_t>(c)};
        }
      });

  std::size_t best = candidates;  // Sentinel: none selected yet.
  for (std::size_t c = 0; c < candidates; ++c) {
    if (!scored[c].ok()) continue;
    if (options_.worst_case_cap_slots != 0 &&
        scored[c]->score.worst_case_latency > options_.worst_case_cap_slots) {
      continue;
    }
    if (best == candidates || scored[c]->score.expected_mean_delay <
                                  scored[best]->score.expected_mean_delay) {
      best = c;
    }
  }
  if (best == candidates) {
    for (std::size_t c = 0; c < candidates; ++c) {
      if (!scored[c].ok()) return scored[c].status();
    }
    return Status::Infeasible(
        "ProgramOptimizer: every candidate exceeds the worst-case cap of " +
        std::to_string(options_.worst_case_cap_slots) + " slots");
  }
  return std::move(scored[best]);
}

}  // namespace bdisk::adaptive
