#include "sim/arrivals.h"

#include <cmath>
#include <cstdio>

#include "common/check.h"
#include "common/random.h"
#include "runtime/rng_stream.h"

namespace bdisk::sim {

namespace {

// Family tags keep same-seed processes of different kinds independent,
// mirroring the channel models' family-tagged streams.
constexpr std::uint64_t kPoissonTag = 0x506f6973736f6e41ULL;     // "PoissonA"
constexpr std::uint64_t kFlashCrowdTag = 0x466c617368437241ULL;  // "FlashCrA"
constexpr std::uint64_t kDiurnalTag = 0x446975726e616c41ULL;     // "DiurnalA"

// Per-client generator: stream `client` of the family-tagged base seed.
Rng ClientRng(std::uint64_t tag, std::uint64_t seed, std::uint64_t client) {
  return runtime::StreamRng(runtime::Mix64(seed ^ tag), client);
}

std::string U64(std::uint64_t v) { return std::to_string(v); }

std::string Dbl(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

}  // namespace

PoissonArrivals::PoissonArrivals(std::uint64_t window_slots,
                                 std::uint64_t seed)
    : window_(window_slots), seed_(seed) {
  BDISK_CHECK(window_ > 0);
}

double PoissonArrivals::ArrivalTimeOf(std::uint64_t client) const {
  Rng rng = ClientRng(kPoissonTag, seed_, client);
  // UniformDouble is in [0, 1), so the time stays strictly below the window.
  return rng.UniformDouble() * static_cast<double>(window_);
}

std::string PoissonArrivals::Describe() const {
  return "poisson:window=" + U64(window_) + ",seed=" + U64(seed_);
}

FlashCrowdArrivals::FlashCrowdArrivals(const Params& params,
                                       std::uint64_t seed)
    : params_(params), seed_(seed) {
  BDISK_CHECK(params_.window_slots > 0);
  BDISK_CHECK(params_.burst_length > 0);
  BDISK_CHECK(params_.burst_start < params_.window_slots);
  BDISK_CHECK(params_.burst_start + params_.burst_length <=
              params_.window_slots);
  BDISK_CHECK(params_.burst_fraction >= 0.0 && params_.burst_fraction <= 1.0);
}

double FlashCrowdArrivals::ArrivalTimeOf(std::uint64_t client) const {
  Rng rng = ClientRng(kFlashCrowdTag, seed_, client);
  // First draw selects burst membership, second the position; both come
  // from the client's own stream, so the pair is one pure draw.
  const bool burst = rng.UniformDouble() < params_.burst_fraction;
  const double u = rng.UniformDouble();
  if (burst) {
    return static_cast<double>(params_.burst_start) +
           u * static_cast<double>(params_.burst_length);
  }
  return u * static_cast<double>(params_.window_slots);
}

std::string FlashCrowdArrivals::Describe() const {
  return "flashcrowd:window=" + U64(params_.window_slots) +
         ",burst_start=" + U64(params_.burst_start) +
         ",burst_length=" + U64(params_.burst_length) +
         ",burst_fraction=" + Dbl(params_.burst_fraction) +
         ",seed=" + U64(seed_);
}

DiurnalArrivals::DiurnalArrivals(const Params& params, std::uint64_t seed)
    : params_(params), seed_(seed) {
  BDISK_CHECK(params_.window_slots > 0);
  BDISK_CHECK(params_.cycles >= 1);
  BDISK_CHECK(params_.amplitude >= 0.0 && params_.amplitude < 1.0);
}

double DiurnalArrivals::CumulativeRate(double t) const {
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  const double period = static_cast<double>(params_.window_slots) /
                        static_cast<double>(params_.cycles);
  return t + params_.amplitude * period / kTwoPi *
                 (1.0 - std::cos(kTwoPi * t / period));
}

double DiurnalArrivals::ArrivalTimeOf(std::uint64_t client) const {
  Rng rng = ClientRng(kDiurnalTag, seed_, client);
  const double window = static_cast<double>(params_.window_slots);
  const double target = rng.UniformDouble() * window;
  // Lambda is strictly increasing (amplitude < 1 keeps lambda(t) > 0), so
  // a fixed-depth bisection inverts it deterministically; 64 halvings take
  // the bracket below one ulp of the window.
  double lo = 0.0;
  double hi = window;
  for (int i = 0; i < 64; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (CumulativeRate(mid) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  // lo < window always (target < Lambda(window) = window).
  return lo;
}

std::string DiurnalArrivals::Describe() const {
  return "diurnal:window=" + U64(params_.window_slots) +
         ",cycles=" + std::to_string(params_.cycles) +
         ",amplitude=" + Dbl(params_.amplitude) + ",seed=" + U64(seed_);
}

}  // namespace bdisk::sim
