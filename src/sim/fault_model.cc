#include "sim/fault_model.h"

namespace bdisk::sim {

double GilbertElliottFaultModel::StationaryLossRate() const {
  const double to_bad = params_.p_good_to_bad;
  const double to_good = params_.p_bad_to_good;
  if (to_bad + to_good <= 0.0) return params_.loss_good;
  const double pi_bad = to_bad / (to_bad + to_good);
  return (1.0 - pi_bad) * params_.loss_good + pi_bad * params_.loss_bad;
}

}  // namespace bdisk::sim
