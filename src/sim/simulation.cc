#include "sim/simulation.h"

#include <algorithm>
#include <bit>

#include "common/check.h"
#include "obs/registry.h"
#include "obs/snapshot.h"
#include "obs/trace.h"
#include "runtime/parallel_for.h"
#include "runtime/rng_stream.h"
#include "sim/event_engine.h"
#include "sim/trace_walk.h"

namespace bdisk::sim {

namespace {

// Materializes a legacy sequential fault model as a fault-effect trace
// (Corrupts == the paper's "block unreadable", i.e. an erasure).
std::vector<faults::FaultType> RealizeLegacy(FaultModel* faults,
                                             std::uint64_t horizon) {
  BDISK_CHECK(faults != nullptr);
  faults->Reset();
  std::vector<faults::FaultType> trace(horizon);
  for (std::uint64_t t = 0; t < horizon; ++t) {
    trace[t] = faults->Corrupts(t) ? faults::FaultType::kLost
                                   : faults::FaultType::kNone;
  }
  return trace;
}

std::vector<faults::FaultType> RealizeChannel(
    const faults::ChannelModel& channel, std::uint64_t horizon) {
  std::vector<faults::FaultType> trace(horizon);
  channel.FillFaults(0, horizon, trace.data());
  return trace;
}

}  // namespace

Simulator::Simulator(const broadcast::BroadcastProgram& program,
                     FaultModel* faults, std::uint64_t horizon)
    : program_(&program), faults_(RealizeLegacy(faults, horizon)) {}

Simulator::Simulator(const EpochSchedule& schedule, FaultModel* faults,
                     std::uint64_t horizon)
    : schedule_(&schedule), faults_(RealizeLegacy(faults, horizon)) {}

Simulator::Simulator(const broadcast::BroadcastProgram& program,
                     const faults::ChannelModel& channel,
                     std::uint64_t horizon)
    : program_(&program), faults_(RealizeChannel(channel, horizon)) {}

Simulator::Simulator(const EpochSchedule& schedule,
                     const faults::ChannelModel& channel,
                     std::uint64_t horizon)
    : schedule_(&schedule), faults_(RealizeChannel(channel, horizon)) {}

const std::vector<broadcast::ProgramFile>& Simulator::files() const {
  return schedule_ != nullptr ? schedule_->files() : program_->files();
}

std::optional<broadcast::TransmissionRef> Simulator::TxAt(
    std::uint64_t t) const {
  return schedule_ != nullptr ? schedule_->TransmissionAt(t)
                              : program_->TransmissionAt(t);
}

std::uint64_t Simulator::MaxDataCycle() const {
  return schedule_ != nullptr ? schedule_->MaxDataCycleLength()
                              : program_->DataCycleLength();
}

Result<RetrievalOutcome> Simulator::Retrieve(
    const ClientRequest& request) const {
  if (request.file >= files().size()) {
    return Status::InvalidArgument("Simulator: unknown file index " +
                                   std::to_string(request.file));
  }
  if (request.start_slot >= faults_.size()) {
    return Status::InvalidArgument("Simulator: start beyond horizon");
  }
  const broadcast::ProgramFile& pf = files()[request.file];
  if (request.model == broadcast::ClientModel::kFlat && pf.n != pf.m) {
    return Status::InvalidArgument(
        "Simulator: flat client model requires n == m for file '" + pf.name +
        "'");
  }

  RetrievalOutcome outcome;
  // Distinct-block tracker; n can exceed 64, so use a byte vector.
  std::vector<bool> have(pf.n, false);
  std::uint32_t distinct = 0;
  for (std::uint64_t t = request.start_slot; t < faults_.size(); ++t) {
    const auto tx = TxAt(t);
    if (!tx.has_value() || tx->file != request.file) continue;
    const faults::FaultType fault = faults_[t];
    if (fault != faults::FaultType::kNone) {
      // Lost, or corrupted-and-discarded after checksum detection: either
      // way the client makes no progress on this transmission.
      ++outcome.errors_observed;
      if (fault == faults::FaultType::kCorrupted) ++outcome.corrupt_detected;
      continue;
    }
    if (!have[tx->block_index]) {
      have[tx->block_index] = true;
      ++distinct;
    }
    if (distinct >= pf.m) {
      outcome.completed = true;
      outcome.completion_slot = t;
      outcome.latency = t - request.start_slot + 1;
      break;
    }
  }
  if (outcome.completed && request.deadline_slots > 0) {
    outcome.met_deadline = outcome.latency <= request.deadline_slots;
  } else if (!outcome.completed) {
    outcome.met_deadline = request.deadline_slots == 0;
  }
  if (outcome.completed) {
    const std::uint64_t period = PeriodAt(request.start_slot);
    outcome.periods_to_recovery = (outcome.latency + period - 1) / period;
    // Stall: slots the faults cost versus the lossless channel. A fault on
    // the file's slots is a necessary condition for stall, so the baseline
    // pass is skipped on the (common) clean-retrieval path.
    if (outcome.errors_observed > 0) {
      const auto baseline =
          LosslessCompletionSlot(request.file, request.start_slot);
      BDISK_CHECK(baseline.has_value());  // Completes by outcome's slot.
      outcome.stall_slots = outcome.completion_slot - *baseline;
    }
  }
  return outcome;
}

std::optional<std::uint64_t> LosslessCompletionWalk(
    const std::function<std::optional<broadcast::TransmissionRef>(
        std::uint64_t)>& tx_at,
    broadcast::FileIndex file, std::uint32_t m, std::uint32_t n,
    std::uint64_t start, std::uint64_t end) {
  std::vector<bool> have(n, false);
  std::uint32_t distinct = 0;
  for (std::uint64_t t = start; t < end; ++t) {
    const auto tx = tx_at(t);
    if (!tx.has_value() || tx->file != file) continue;
    if (!have[tx->block_index]) {
      have[tx->block_index] = true;
      ++distinct;
    }
    if (distinct >= m) return t;
  }
  return std::nullopt;
}

std::optional<std::uint64_t> Simulator::LosslessCompletionSlot(
    broadcast::FileIndex file, std::uint64_t start) const {
  const broadcast::ProgramFile& pf = files()[file];
  return LosslessCompletionWalk([this](std::uint64_t t) { return TxAt(t); },
                                file, pf.m, pf.n, start, faults_.size());
}

std::uint64_t Simulator::PeriodAt(std::uint64_t t) const {
  if (schedule_ == nullptr) return program_->period();
  return schedule_->epochs()[schedule_->EpochIndexAt(t)].program.period();
}

void Simulator::RecordTraceSpan(obs::TraceSink* sink,
                                std::uint64_t request_id,
                                const ClientRequest& request,
                                const RetrievalOutcome& outcome) const {
  const std::uint8_t trigger =
      sink->TriggerFor(request_id, outcome.completed, outcome.met_deadline,
                       outcome.stall_slots);
  if (trigger == 0) return;
  const broadcast::ProgramFile& pf = files()[request.file];
  TraceWalkContext ctx;
  // The slot engine finds the next transmission by scanning — the same
  // O(slots) walk Retrieve performed, now paid only for traced requests.
  ctx.next_tx = [this, file = request.file](std::uint64_t from)
      -> std::optional<std::pair<std::uint64_t, std::uint32_t>> {
    for (std::uint64_t t = from; t < faults_.size(); ++t) {
      const auto tx = TxAt(t);
      if (tx.has_value() && tx->file == file) {
        return std::make_pair(t, tx->block_index);
      }
    }
    return std::nullopt;
  };
  ctx.faults = &faults_;
  if (schedule_ != nullptr) {
    const auto& epochs = schedule_->epochs();
    for (std::size_t e = 1; e < epochs.size(); ++e) {
      ctx.epoch_starts.push_back(epochs[e].start_slot);
    }
  }
  ctx.m = pf.m;
  ctx.n = pf.n;
  ctx.horizon = faults_.size();
  sink->Record(BuildRetrievalSpan(ctx, request_id, request.file, pf.name,
                                  request.start_slot, request.deadline_slots,
                                  outcome, trigger));
}

Result<RetrievalOutcome> Simulator::RetrieveTransaction(
    const TransactionRequest& request) const {
  if (request.files.empty()) {
    return Status::InvalidArgument("RetrieveTransaction: no files");
  }
  RetrievalOutcome combined;
  combined.completed = true;
  combined.completion_slot = 0;
  for (broadcast::FileIndex f : request.files) {
    ClientRequest single;
    single.file = f;
    single.start_slot = request.start_slot;
    single.deadline_slots = 0;  // Judged jointly below.
    single.model = request.model;
    BDISK_ASSIGN_OR_RETURN(RetrievalOutcome outcome, Retrieve(single));
    combined.errors_observed += outcome.errors_observed;
    combined.corrupt_detected += outcome.corrupt_detected;
    if (!outcome.completed) {
      combined.completed = false;
    } else if (outcome.completion_slot > combined.completion_slot) {
      combined.completion_slot = outcome.completion_slot;
    }
  }
  if (combined.completed) {
    combined.latency = combined.completion_slot - request.start_slot + 1;
    combined.met_deadline = request.deadline_slots == 0 ||
                            combined.latency <= request.deadline_slots;
    const std::uint64_t period = PeriodAt(request.start_slot);
    combined.periods_to_recovery = (combined.latency + period - 1) / period;
    if (combined.errors_observed > 0) {
      // Joint stall: against the lossless channel the transaction also
      // completes when its slowest item does.
      std::uint64_t baseline = 0;
      for (broadcast::FileIndex f : request.files) {
        const auto item = LosslessCompletionSlot(f, request.start_slot);
        BDISK_CHECK(item.has_value());
        baseline = std::max(baseline, *item);
      }
      combined.stall_slots = combined.completion_slot - baseline;
    }
  } else {
    combined.completion_slot = 0;
    combined.met_deadline = request.deadline_slots == 0;
  }
  return combined;
}

Status Simulator::ValidateWorkload(
    const WorkloadConfig& config, std::vector<std::uint64_t>* deadlines,
    std::vector<std::uint64_t>* start_ranges) const {
  const std::size_t file_count = files().size();
  deadlines->assign(file_count, 0);
  start_ranges->assign(file_count, 0);
  for (broadcast::FileIndex f = 0; f < file_count; ++f) {
    const broadcast::ProgramFile& pf = files()[f];
    if (config.model == broadcast::ClientModel::kFlat && pf.n != pf.m) {
      return Status::InvalidArgument(
          "Simulator: flat client model requires n == m for file '" +
          pf.name + "'");
    }
    std::uint64_t deadline = 0;
    if (f < config.deadline_slots.size() && config.deadline_slots[f] != 0) {
      deadline = config.deadline_slots[f];
    } else if (!pf.latency_slots.empty()) {
      deadline = pf.latency_slots.front();
    }
    (*deadlines)[f] = deadline;

    // Leave room at the end of the horizon so retrievals are not cut off
    // artificially: a generous tail of several periods plus the deadline.
    const std::uint64_t tail =
        std::max<std::uint64_t>(deadline, 4 * MaxDataCycle());
    if (faults_.size() <= tail) {
      return Status::InvalidArgument(
          "Simulator: horizon too small for workload (need > " +
          std::to_string(tail) + " slots)");
    }
    (*start_ranges)[f] = faults_.size() - tail;
  }
  return Status::OK();
}

Result<SimulationMetrics> Simulator::RunWorkload(const WorkloadConfig& config,
                                                 runtime::ThreadPool* pool,
                                                 obs::Timeline* timeline,
                                                 obs::TraceSink* trace)
    const {
  const std::size_t file_count = files().size();
  // Validate everything up front (per-file deadline and admissible start
  // range) so shard workers cannot fail mid-flight.
  std::vector<std::uint64_t> deadlines;
  std::vector<std::uint64_t> start_ranges;
  BDISK_RETURN_NOT_OK(ValidateWorkload(config, &deadlines, &start_ranges));

  // One global request index g = f * requests_per_file + k drives both the
  // shard split and the RNG stream, so any shard count replays the exact
  // same per-request draws.
  const std::uint64_t total = file_count * config.requests_per_file;
  const unsigned shards = runtime::ShardCountFor(pool, total);
  std::vector<SimulationMetrics> shard_metrics(shards);
  std::vector<obs::Timeline> shard_timelines;
  if (timeline != nullptr) {
    shard_timelines.assign(
        shards, obs::Timeline(timeline->interval_slots(),
                              timeline->horizon()));
  }
  std::vector<obs::TraceSink> shard_traces;
  if (trace != nullptr) {
    shard_traces.assign(shards, obs::TraceSink(trace->options()));
  }
  obs::HistogramMetric* dispatch_us = obs::GlobalRegistry().GetHistogram(
      "phase.slot_dispatch_us", obs::PhaseTimerBoundsUs());
  runtime::ParallelFor(
      pool, total, shards,
      [&](unsigned shard, runtime::ShardRange range) {
        // One timer per shard of slot-walked retrievals — never per request.
        obs::ScopedPhaseTimer timer(dispatch_us);
        SimulationMetrics& local = shard_metrics[shard];
        obs::Timeline* local_tl =
            timeline != nullptr ? &shard_timelines[shard] : nullptr;
        obs::TraceSink* local_tr =
            trace != nullptr ? &shard_traces[shard] : nullptr;
        if (local_tl != nullptr) {
          local_tl->Reserve(static_cast<std::size_t>(range.end - range.begin));
        }
        local.per_file.resize(file_count);
        for (std::uint64_t g = range.begin; g < range.end; ++g) {
          const auto f = static_cast<broadcast::FileIndex>(
              g / config.requests_per_file);
          Rng rng = runtime::StreamRng(config.seed, g);
          ClientRequest req;
          req.file = f;
          req.start_slot = rng.Uniform(start_ranges[f]);
          req.deadline_slots = deadlines[f];
          req.model = config.model;
          auto outcome = Retrieve(req);
          BDISK_CHECK(outcome.ok());  // Inputs were validated above.
          if (local_tr != nullptr) RecordTraceSpan(local_tr, g, req, *outcome);
          FileMetrics& fm = local.per_file[f];
          if (outcome->completed) {
            ++fm.completed;
            fm.latency.Add(static_cast<double>(outcome->latency));
            fm.stall.Add(static_cast<double>(outcome->stall_slots));
            fm.periods_to_recovery.Add(
                static_cast<double>(outcome->periods_to_recovery));
            if (!outcome->met_deadline) ++fm.missed_deadline;
            if (local_tl != nullptr) {
              local_tl->RecordCompleted(outcome->completion_slot,
                                        outcome->latency,
                                        outcome->stall_slots,
                                        outcome->met_deadline,
                                        outcome->errors_observed,
                                        outcome->corrupt_detected);
            }
          } else {
            ++fm.incomplete;
            if (local_tl != nullptr) {
              local_tl->RecordIncomplete(outcome->errors_observed,
                                         outcome->corrupt_detected);
            }
          }
          fm.errors_observed += outcome->errors_observed;
          fm.corrupt_detected += outcome->corrupt_detected;
        }
      });

  SimulationMetrics metrics;
  metrics.per_file.resize(file_count);
  for (broadcast::FileIndex f = 0; f < file_count; ++f) {
    metrics.per_file[f].file_name = files()[f].name;
  }
  for (const SimulationMetrics& sm : shard_metrics) metrics.Merge(sm);
  if (timeline != nullptr) {
    for (const obs::Timeline& tl : shard_timelines) timeline->Merge(tl);
  }
  if (trace != nullptr) {
    for (obs::TraceSink& tr : shard_traces) trace->Merge(std::move(tr));
  }
  return metrics;
}

Result<SimulationMetrics> Simulator::RunWorkloadEvented(
    const WorkloadConfig& config, runtime::ThreadPool* pool,
    obs::Timeline* timeline, obs::TraceSink* trace) const {
  // Identical validation, request generation, and sharding to RunWorkload:
  // the two paths differ only in how each retrieval is walked, so the
  // resulting metrics snapshots are byte-identical.
  std::vector<std::uint64_t> deadlines;
  std::vector<std::uint64_t> start_ranges;
  BDISK_RETURN_NOT_OK(ValidateWorkload(config, &deadlines, &start_ranges));
  const std::uint64_t total = files().size() * config.requests_per_file;
  const auto client_at = [&](std::uint64_t g) {
    const auto f =
        static_cast<broadcast::FileIndex>(g / config.requests_per_file);
    Rng rng = runtime::StreamRng(config.seed, g);
    EventClient client;
    client.file = f;
    client.start_slot = rng.Uniform(start_ranges[f]);
    client.deadline_slots = deadlines[f];
    return client;
  };
  if (schedule_ != nullptr) {
    const EventEngine engine(*schedule_, faults_);
    return engine.Run(total, client_at, pool, nullptr, timeline, trace);
  }
  const EventEngine engine(*program_, faults_);
  return engine.Run(total, client_at, pool, nullptr, timeline, trace);
}

Result<TransactionMetrics> Simulator::RunTransactionWorkload(
    const TransactionWorkloadConfig& config, runtime::ThreadPool* pool) const {
  const std::size_t file_count = files().size();
  if (config.files_per_transaction == 0 ||
      config.files_per_transaction > file_count) {
    return Status::InvalidArgument(
        "RunTransactionWorkload: files_per_transaction must be in [1, " +
        std::to_string(file_count) + "], got " +
        std::to_string(config.files_per_transaction));
  }
  for (broadcast::FileIndex f = 0; f < file_count; ++f) {
    const broadcast::ProgramFile& pf = files()[f];
    if (config.model == broadcast::ClientModel::kFlat && pf.n != pf.m) {
      return Status::InvalidArgument(
          "Simulator: flat client model requires n == m for file '" +
          pf.name + "'");
    }
  }
  const std::uint64_t tail = std::max<std::uint64_t>(
      config.deadline_slots, 4 * MaxDataCycle());
  if (faults_.size() <= tail) {
    return Status::InvalidArgument(
        "Simulator: horizon too small for workload (need > " +
        std::to_string(tail) + " slots)");
  }
  const std::uint64_t start_range = faults_.size() - tail;

  const unsigned shards = runtime::ShardCountFor(pool, config.transactions);
  std::vector<TransactionMetrics> shard_metrics(shards);
  runtime::ParallelFor(
      pool, config.transactions, shards,
      [&](unsigned shard, runtime::ShardRange range) {
        TransactionMetrics& local = shard_metrics[shard];
        for (std::uint64_t t = range.begin; t < range.end; ++t) {
          Rng rng = runtime::StreamRng(config.seed, t);
          TransactionRequest req;
          req.start_slot = rng.Uniform(start_range);
          req.deadline_slots = config.deadline_slots;
          req.model = config.model;
          for (std::size_t i : rng.SampleWithoutReplacement(
                   file_count, config.files_per_transaction)) {
            req.files.push_back(static_cast<broadcast::FileIndex>(i));
          }
          auto outcome = RetrieveTransaction(req);
          BDISK_CHECK(outcome.ok());  // Inputs were validated above.
          if (outcome->completed) {
            ++local.completed;
            local.latency.Add(static_cast<double>(outcome->latency));
            local.stall.Add(static_cast<double>(outcome->stall_slots));
            local.periods_to_recovery.Add(
                static_cast<double>(outcome->periods_to_recovery));
            if (!outcome->met_deadline) ++local.missed_deadline;
          } else {
            ++local.incomplete;
          }
          local.errors_observed += outcome->errors_observed;
          local.corrupt_detected += outcome->corrupt_detected;
        }
      });

  TransactionMetrics metrics;
  for (const TransactionMetrics& tm : shard_metrics) metrics.Merge(tm);
  return metrics;
}

Result<SimulationMetrics> Simulator::RunRequests(
    const std::vector<ClientRequest>& requests,
    runtime::ThreadPool* pool, obs::Timeline* timeline,
    obs::TraceSink* trace) const {
  const std::size_t file_count = files().size();
  // Validate up front so shard workers cannot fail mid-flight.
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const ClientRequest& req = requests[i];
    if (req.file >= file_count) {
      return Status::InvalidArgument("RunRequests: request " +
                                     std::to_string(i) +
                                     " names unknown file index " +
                                     std::to_string(req.file));
    }
    if (req.start_slot >= faults_.size()) {
      return Status::InvalidArgument("RunRequests: request " +
                                     std::to_string(i) +
                                     " starts beyond the horizon");
    }
    const broadcast::ProgramFile& pf = files()[req.file];
    if (req.model == broadcast::ClientModel::kFlat && pf.n != pf.m) {
      return Status::InvalidArgument(
          "Simulator: flat client model requires n == m for file '" +
          pf.name + "'");
    }
  }

  const unsigned shards = runtime::ShardCountFor(pool, requests.size());
  std::vector<SimulationMetrics> shard_metrics(shards);
  std::vector<obs::Timeline> shard_timelines;
  if (timeline != nullptr) {
    shard_timelines.assign(
        shards, obs::Timeline(timeline->interval_slots(),
                              timeline->horizon()));
  }
  std::vector<obs::TraceSink> shard_traces;
  if (trace != nullptr) {
    shard_traces.assign(shards, obs::TraceSink(trace->options()));
  }
  obs::HistogramMetric* dispatch_us = obs::GlobalRegistry().GetHistogram(
      "phase.slot_dispatch_us", obs::PhaseTimerBoundsUs());
  runtime::ParallelFor(
      pool, requests.size(), shards,
      [&](unsigned shard, runtime::ShardRange range) {
        obs::ScopedPhaseTimer timer(dispatch_us);
        SimulationMetrics& local = shard_metrics[shard];
        obs::Timeline* local_tl =
            timeline != nullptr ? &shard_timelines[shard] : nullptr;
        obs::TraceSink* local_tr =
            trace != nullptr ? &shard_traces[shard] : nullptr;
        if (local_tl != nullptr) {
          local_tl->Reserve(static_cast<std::size_t>(range.end - range.begin));
        }
        local.per_file.resize(file_count);
        for (std::uint64_t g = range.begin; g < range.end; ++g) {
          auto outcome = Retrieve(requests[g]);
          BDISK_CHECK(outcome.ok());  // Inputs were validated above.
          if (local_tr != nullptr) {
            RecordTraceSpan(local_tr, g, requests[g], *outcome);
          }
          FileMetrics& fm = local.per_file[requests[g].file];
          if (outcome->completed) {
            ++fm.completed;
            fm.latency.Add(static_cast<double>(outcome->latency));
            fm.stall.Add(static_cast<double>(outcome->stall_slots));
            fm.periods_to_recovery.Add(
                static_cast<double>(outcome->periods_to_recovery));
            if (!outcome->met_deadline) ++fm.missed_deadline;
            if (local_tl != nullptr) {
              local_tl->RecordCompleted(outcome->completion_slot,
                                        outcome->latency,
                                        outcome->stall_slots,
                                        outcome->met_deadline,
                                        outcome->errors_observed,
                                        outcome->corrupt_detected);
            }
          } else {
            ++fm.incomplete;
            if (local_tl != nullptr) {
              local_tl->RecordIncomplete(outcome->errors_observed,
                                         outcome->corrupt_detected);
            }
          }
          fm.errors_observed += outcome->errors_observed;
          fm.corrupt_detected += outcome->corrupt_detected;
        }
      });

  SimulationMetrics metrics;
  metrics.per_file.resize(file_count);
  for (broadcast::FileIndex f = 0; f < file_count; ++f) {
    metrics.per_file[f].file_name = files()[f].name;
  }
  for (const SimulationMetrics& sm : shard_metrics) metrics.Merge(sm);
  if (timeline != nullptr) {
    for (const obs::Timeline& tl : shard_timelines) timeline->Merge(tl);
  }
  if (trace != nullptr) {
    for (obs::TraceSink& tr : shard_traces) trace->Merge(std::move(tr));
  }
  return metrics;
}

std::uint64_t Simulator::CorruptedSlotCount() const {
  std::uint64_t n = 0;
  for (faults::FaultType f : faults_) {
    if (f != faults::FaultType::kNone) ++n;
  }
  return n;
}

}  // namespace bdisk::sim
