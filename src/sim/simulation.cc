#include "sim/simulation.h"

#include <algorithm>
#include <bit>

#include "common/check.h"
#include "runtime/parallel_for.h"
#include "runtime/rng_stream.h"

namespace bdisk::sim {

Simulator::Simulator(const broadcast::BroadcastProgram& program,
                     FaultModel* faults, std::uint64_t horizon)
    : program_(&program) {
  BDISK_CHECK(faults != nullptr);
  faults->Reset();
  corrupted_.resize(horizon);
  for (std::uint64_t t = 0; t < horizon; ++t) {
    corrupted_[t] = faults->Corrupts(t);
  }
}

Simulator::Simulator(const EpochSchedule& schedule, FaultModel* faults,
                     std::uint64_t horizon)
    : schedule_(&schedule) {
  BDISK_CHECK(faults != nullptr);
  faults->Reset();
  corrupted_.resize(horizon);
  for (std::uint64_t t = 0; t < horizon; ++t) {
    corrupted_[t] = faults->Corrupts(t);
  }
}

const std::vector<broadcast::ProgramFile>& Simulator::files() const {
  return schedule_ != nullptr ? schedule_->files() : program_->files();
}

std::optional<broadcast::TransmissionRef> Simulator::TxAt(
    std::uint64_t t) const {
  return schedule_ != nullptr ? schedule_->TransmissionAt(t)
                              : program_->TransmissionAt(t);
}

std::uint64_t Simulator::MaxDataCycle() const {
  return schedule_ != nullptr ? schedule_->MaxDataCycleLength()
                              : program_->DataCycleLength();
}

Result<RetrievalOutcome> Simulator::Retrieve(
    const ClientRequest& request) const {
  if (request.file >= files().size()) {
    return Status::InvalidArgument("Simulator: unknown file index " +
                                   std::to_string(request.file));
  }
  if (request.start_slot >= corrupted_.size()) {
    return Status::InvalidArgument("Simulator: start beyond horizon");
  }
  const broadcast::ProgramFile& pf = files()[request.file];
  if (request.model == broadcast::ClientModel::kFlat && pf.n != pf.m) {
    return Status::InvalidArgument(
        "Simulator: flat client model requires n == m for file '" + pf.name +
        "'");
  }

  RetrievalOutcome outcome;
  // Distinct-block tracker; n can exceed 64, so use a byte vector.
  std::vector<bool> have(pf.n, false);
  std::uint32_t distinct = 0;
  for (std::uint64_t t = request.start_slot; t < corrupted_.size(); ++t) {
    const auto tx = TxAt(t);
    if (!tx.has_value() || tx->file != request.file) continue;
    if (corrupted_[t]) {
      ++outcome.errors_observed;
      continue;
    }
    if (!have[tx->block_index]) {
      have[tx->block_index] = true;
      ++distinct;
    }
    if (distinct >= pf.m) {
      outcome.completed = true;
      outcome.completion_slot = t;
      outcome.latency = t - request.start_slot + 1;
      break;
    }
  }
  if (outcome.completed && request.deadline_slots > 0) {
    outcome.met_deadline = outcome.latency <= request.deadline_slots;
  } else if (!outcome.completed) {
    outcome.met_deadline = request.deadline_slots == 0;
  }
  return outcome;
}

Result<RetrievalOutcome> Simulator::RetrieveTransaction(
    const TransactionRequest& request) const {
  if (request.files.empty()) {
    return Status::InvalidArgument("RetrieveTransaction: no files");
  }
  RetrievalOutcome combined;
  combined.completed = true;
  combined.completion_slot = 0;
  for (broadcast::FileIndex f : request.files) {
    ClientRequest single;
    single.file = f;
    single.start_slot = request.start_slot;
    single.deadline_slots = 0;  // Judged jointly below.
    single.model = request.model;
    BDISK_ASSIGN_OR_RETURN(RetrievalOutcome outcome, Retrieve(single));
    combined.errors_observed += outcome.errors_observed;
    if (!outcome.completed) {
      combined.completed = false;
    } else if (outcome.completion_slot > combined.completion_slot) {
      combined.completion_slot = outcome.completion_slot;
    }
  }
  if (combined.completed) {
    combined.latency = combined.completion_slot - request.start_slot + 1;
    combined.met_deadline = request.deadline_slots == 0 ||
                            combined.latency <= request.deadline_slots;
  } else {
    combined.completion_slot = 0;
    combined.met_deadline = request.deadline_slots == 0;
  }
  return combined;
}

Result<SimulationMetrics> Simulator::RunWorkload(const WorkloadConfig& config,
                                                 runtime::ThreadPool* pool)
    const {
  const std::size_t file_count = files().size();
  // Validate everything up front (per-file deadline and admissible start
  // range) so shard workers cannot fail mid-flight.
  std::vector<std::uint64_t> deadlines(file_count, 0);
  std::vector<std::uint64_t> start_ranges(file_count, 0);
  for (broadcast::FileIndex f = 0; f < file_count; ++f) {
    const broadcast::ProgramFile& pf = files()[f];
    if (config.model == broadcast::ClientModel::kFlat && pf.n != pf.m) {
      return Status::InvalidArgument(
          "Simulator: flat client model requires n == m for file '" +
          pf.name + "'");
    }
    std::uint64_t deadline = 0;
    if (f < config.deadline_slots.size() && config.deadline_slots[f] != 0) {
      deadline = config.deadline_slots[f];
    } else if (!pf.latency_slots.empty()) {
      deadline = pf.latency_slots.front();
    }
    deadlines[f] = deadline;

    // Leave room at the end of the horizon so retrievals are not cut off
    // artificially: a generous tail of several periods plus the deadline.
    const std::uint64_t tail =
        std::max<std::uint64_t>(deadline, 4 * MaxDataCycle());
    if (corrupted_.size() <= tail) {
      return Status::InvalidArgument(
          "Simulator: horizon too small for workload (need > " +
          std::to_string(tail) + " slots)");
    }
    start_ranges[f] = corrupted_.size() - tail;
  }

  // One global request index g = f * requests_per_file + k drives both the
  // shard split and the RNG stream, so any shard count replays the exact
  // same per-request draws.
  const std::uint64_t total = file_count * config.requests_per_file;
  const unsigned shards = runtime::ShardCountFor(pool, total);
  std::vector<SimulationMetrics> shard_metrics(shards);
  runtime::ParallelFor(
      pool, total, shards,
      [&](unsigned shard, runtime::ShardRange range) {
        SimulationMetrics& local = shard_metrics[shard];
        local.per_file.resize(file_count);
        for (std::uint64_t g = range.begin; g < range.end; ++g) {
          const auto f = static_cast<broadcast::FileIndex>(
              g / config.requests_per_file);
          Rng rng = runtime::StreamRng(config.seed, g);
          ClientRequest req;
          req.file = f;
          req.start_slot = rng.Uniform(start_ranges[f]);
          req.deadline_slots = deadlines[f];
          req.model = config.model;
          auto outcome = Retrieve(req);
          BDISK_CHECK(outcome.ok());  // Inputs were validated above.
          FileMetrics& fm = local.per_file[f];
          if (outcome->completed) {
            ++fm.completed;
            fm.latency.Add(static_cast<double>(outcome->latency));
            if (!outcome->met_deadline) ++fm.missed_deadline;
          } else {
            ++fm.incomplete;
          }
          fm.errors_observed += outcome->errors_observed;
        }
      });

  SimulationMetrics metrics;
  metrics.per_file.resize(file_count);
  for (broadcast::FileIndex f = 0; f < file_count; ++f) {
    metrics.per_file[f].file_name = files()[f].name;
  }
  for (const SimulationMetrics& sm : shard_metrics) metrics.Merge(sm);
  return metrics;
}

Result<TransactionMetrics> Simulator::RunTransactionWorkload(
    const TransactionWorkloadConfig& config, runtime::ThreadPool* pool) const {
  const std::size_t file_count = files().size();
  if (config.files_per_transaction == 0 ||
      config.files_per_transaction > file_count) {
    return Status::InvalidArgument(
        "RunTransactionWorkload: files_per_transaction must be in [1, " +
        std::to_string(file_count) + "], got " +
        std::to_string(config.files_per_transaction));
  }
  for (broadcast::FileIndex f = 0; f < file_count; ++f) {
    const broadcast::ProgramFile& pf = files()[f];
    if (config.model == broadcast::ClientModel::kFlat && pf.n != pf.m) {
      return Status::InvalidArgument(
          "Simulator: flat client model requires n == m for file '" +
          pf.name + "'");
    }
  }
  const std::uint64_t tail = std::max<std::uint64_t>(
      config.deadline_slots, 4 * MaxDataCycle());
  if (corrupted_.size() <= tail) {
    return Status::InvalidArgument(
        "Simulator: horizon too small for workload (need > " +
        std::to_string(tail) + " slots)");
  }
  const std::uint64_t start_range = corrupted_.size() - tail;

  const unsigned shards = runtime::ShardCountFor(pool, config.transactions);
  std::vector<TransactionMetrics> shard_metrics(shards);
  runtime::ParallelFor(
      pool, config.transactions, shards,
      [&](unsigned shard, runtime::ShardRange range) {
        TransactionMetrics& local = shard_metrics[shard];
        for (std::uint64_t t = range.begin; t < range.end; ++t) {
          Rng rng = runtime::StreamRng(config.seed, t);
          TransactionRequest req;
          req.start_slot = rng.Uniform(start_range);
          req.deadline_slots = config.deadline_slots;
          req.model = config.model;
          for (std::size_t i : rng.SampleWithoutReplacement(
                   file_count, config.files_per_transaction)) {
            req.files.push_back(static_cast<broadcast::FileIndex>(i));
          }
          auto outcome = RetrieveTransaction(req);
          BDISK_CHECK(outcome.ok());  // Inputs were validated above.
          if (outcome->completed) {
            ++local.completed;
            local.latency.Add(static_cast<double>(outcome->latency));
            if (!outcome->met_deadline) ++local.missed_deadline;
          } else {
            ++local.incomplete;
          }
          local.errors_observed += outcome->errors_observed;
        }
      });

  TransactionMetrics metrics;
  for (const TransactionMetrics& tm : shard_metrics) metrics.Merge(tm);
  return metrics;
}

Result<SimulationMetrics> Simulator::RunRequests(
    const std::vector<ClientRequest>& requests,
    runtime::ThreadPool* pool) const {
  const std::size_t file_count = files().size();
  // Validate up front so shard workers cannot fail mid-flight.
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const ClientRequest& req = requests[i];
    if (req.file >= file_count) {
      return Status::InvalidArgument("RunRequests: request " +
                                     std::to_string(i) +
                                     " names unknown file index " +
                                     std::to_string(req.file));
    }
    if (req.start_slot >= corrupted_.size()) {
      return Status::InvalidArgument("RunRequests: request " +
                                     std::to_string(i) +
                                     " starts beyond the horizon");
    }
    const broadcast::ProgramFile& pf = files()[req.file];
    if (req.model == broadcast::ClientModel::kFlat && pf.n != pf.m) {
      return Status::InvalidArgument(
          "Simulator: flat client model requires n == m for file '" +
          pf.name + "'");
    }
  }

  const unsigned shards = runtime::ShardCountFor(pool, requests.size());
  std::vector<SimulationMetrics> shard_metrics(shards);
  runtime::ParallelFor(
      pool, requests.size(), shards,
      [&](unsigned shard, runtime::ShardRange range) {
        SimulationMetrics& local = shard_metrics[shard];
        local.per_file.resize(file_count);
        for (std::uint64_t g = range.begin; g < range.end; ++g) {
          auto outcome = Retrieve(requests[g]);
          BDISK_CHECK(outcome.ok());  // Inputs were validated above.
          FileMetrics& fm = local.per_file[requests[g].file];
          if (outcome->completed) {
            ++fm.completed;
            fm.latency.Add(static_cast<double>(outcome->latency));
            if (!outcome->met_deadline) ++fm.missed_deadline;
          } else {
            ++fm.incomplete;
          }
          fm.errors_observed += outcome->errors_observed;
        }
      });

  SimulationMetrics metrics;
  metrics.per_file.resize(file_count);
  for (broadcast::FileIndex f = 0; f < file_count; ++f) {
    metrics.per_file[f].file_name = files()[f].name;
  }
  for (const SimulationMetrics& sm : shard_metrics) metrics.Merge(sm);
  return metrics;
}

std::uint64_t Simulator::CorruptedSlotCount() const {
  std::uint64_t n = 0;
  for (bool c : corrupted_) {
    if (c) ++n;
  }
  return n;
}

}  // namespace bdisk::sim
