#include "sim/simulation.h"

#include <algorithm>
#include <bit>

#include "common/check.h"

namespace bdisk::sim {

Simulator::Simulator(const broadcast::BroadcastProgram& program,
                     FaultModel* faults, std::uint64_t horizon)
    : program_(&program) {
  BDISK_CHECK(faults != nullptr);
  faults->Reset();
  corrupted_.resize(horizon);
  for (std::uint64_t t = 0; t < horizon; ++t) {
    corrupted_[t] = faults->Corrupts(t);
  }
}

Result<RetrievalOutcome> Simulator::Retrieve(
    const ClientRequest& request) const {
  if (request.file >= program_->file_count()) {
    return Status::InvalidArgument("Simulator: unknown file index " +
                                   std::to_string(request.file));
  }
  if (request.start_slot >= corrupted_.size()) {
    return Status::InvalidArgument("Simulator: start beyond horizon");
  }
  const broadcast::ProgramFile& pf = program_->files()[request.file];
  if (request.model == broadcast::ClientModel::kFlat && pf.n != pf.m) {
    return Status::InvalidArgument(
        "Simulator: flat client model requires n == m for file '" + pf.name +
        "'");
  }

  RetrievalOutcome outcome;
  // Distinct-block tracker; n can exceed 64, so use a byte vector.
  std::vector<bool> have(pf.n, false);
  std::uint32_t distinct = 0;
  for (std::uint64_t t = request.start_slot; t < corrupted_.size(); ++t) {
    const auto tx = program_->TransmissionAt(t);
    if (!tx.has_value() || tx->file != request.file) continue;
    if (corrupted_[t]) {
      ++outcome.errors_observed;
      continue;
    }
    if (!have[tx->block_index]) {
      have[tx->block_index] = true;
      ++distinct;
    }
    if (distinct >= pf.m) {
      outcome.completed = true;
      outcome.completion_slot = t;
      outcome.latency = t - request.start_slot + 1;
      break;
    }
  }
  if (outcome.completed && request.deadline_slots > 0) {
    outcome.met_deadline = outcome.latency <= request.deadline_slots;
  } else if (!outcome.completed) {
    outcome.met_deadline = request.deadline_slots == 0;
  }
  return outcome;
}

Result<RetrievalOutcome> Simulator::RetrieveTransaction(
    const TransactionRequest& request) const {
  if (request.files.empty()) {
    return Status::InvalidArgument("RetrieveTransaction: no files");
  }
  RetrievalOutcome combined;
  combined.completed = true;
  combined.completion_slot = 0;
  for (broadcast::FileIndex f : request.files) {
    ClientRequest single;
    single.file = f;
    single.start_slot = request.start_slot;
    single.deadline_slots = 0;  // Judged jointly below.
    single.model = request.model;
    BDISK_ASSIGN_OR_RETURN(RetrievalOutcome outcome, Retrieve(single));
    combined.errors_observed += outcome.errors_observed;
    if (!outcome.completed) {
      combined.completed = false;
    } else if (outcome.completion_slot > combined.completion_slot) {
      combined.completion_slot = outcome.completion_slot;
    }
  }
  if (combined.completed) {
    combined.latency = combined.completion_slot - request.start_slot + 1;
    combined.met_deadline = request.deadline_slots == 0 ||
                            combined.latency <= request.deadline_slots;
  } else {
    combined.completion_slot = 0;
    combined.met_deadline = request.deadline_slots == 0;
  }
  return combined;
}

Result<SimulationMetrics> Simulator::RunWorkload(
    const WorkloadConfig& config) const {
  SimulationMetrics metrics;
  metrics.per_file.resize(program_->file_count());
  Rng rng(config.seed);

  for (broadcast::FileIndex f = 0; f < program_->file_count(); ++f) {
    const broadcast::ProgramFile& pf = program_->files()[f];
    FileMetrics& fm = metrics.per_file[f];
    fm.file_name = pf.name;

    std::uint64_t deadline = 0;
    if (f < config.deadline_slots.size() && config.deadline_slots[f] != 0) {
      deadline = config.deadline_slots[f];
    } else if (!pf.latency_slots.empty()) {
      deadline = pf.latency_slots.front();
    }

    // Leave room at the end of the horizon so retrievals are not cut off
    // artificially: a generous tail of several periods plus the deadline.
    const std::uint64_t tail =
        std::max<std::uint64_t>(deadline, 4 * program_->DataCycleLength());
    if (corrupted_.size() <= tail) {
      return Status::InvalidArgument(
          "Simulator: horizon too small for workload (need > " +
          std::to_string(tail) + " slots)");
    }
    const std::uint64_t start_range = corrupted_.size() - tail;

    for (std::uint64_t k = 0; k < config.requests_per_file; ++k) {
      ClientRequest req;
      req.file = f;
      req.start_slot = rng.Uniform(start_range);
      req.deadline_slots = deadline;
      req.model = config.model;
      BDISK_ASSIGN_OR_RETURN(RetrievalOutcome outcome, Retrieve(req));
      if (outcome.completed) {
        ++fm.completed;
        fm.latency.Add(static_cast<double>(outcome.latency));
        if (!outcome.met_deadline) ++fm.missed_deadline;
      } else {
        ++fm.incomplete;
      }
      fm.errors_observed += outcome.errors_observed;
    }
  }
  return metrics;
}

std::uint64_t Simulator::CorruptedSlotCount() const {
  std::uint64_t n = 0;
  for (bool c : corrupted_) {
    if (c) ++n;
  }
  return n;
}

}  // namespace bdisk::sim
