#include "sim/versioned.h"

#include "common/check.h"
#include "common/random.h"

namespace bdisk::sim {

Result<VersionedBroadcastServer> VersionedBroadcastServer::Create(
    broadcast::BroadcastProgram program, VersionedServerOptions options) {
  if (options.block_size == 0) {
    return Status::InvalidArgument(
        "VersionedBroadcastServer: block_size must be positive");
  }
  if (options.update_interval_slots.size() != program.file_count()) {
    return Status::InvalidArgument(
        "VersionedBroadcastServer: need one update interval per file (" +
        std::to_string(program.file_count()) + "), got " +
        std::to_string(options.update_interval_slots.size()));
  }
  VersionedBroadcastServer server(std::move(program), std::move(options));
  for (broadcast::FileIndex f = 0; f < server.program_.file_count(); ++f) {
    const broadcast::ProgramFile& pf = server.program_.files()[f];
    BDISK_ASSIGN_OR_RETURN(
        ida::Dispersal engine,
        ida::Dispersal::Create(pf.m, pf.n, server.options_.block_size));
    server.engines_.push_back(std::move(engine));
  }
  return server;
}

std::uint64_t VersionedBroadcastServer::VersionAt(broadcast::FileIndex file,
                                                  std::uint64_t slot) const {
  BDISK_CHECK(file < program_.file_count());
  const std::uint64_t interval = options_.update_interval_slots[file];
  return interval == 0 ? 0 : slot / interval;
}

std::uint64_t VersionedBroadcastServer::VersionStartSlot(
    broadcast::FileIndex file, std::uint64_t version) const {
  const std::uint64_t interval = options_.update_interval_slots[file];
  return interval == 0 ? 0 : version * interval;
}

std::vector<std::uint8_t> VersionedBroadcastServer::ContentsOf(
    broadcast::FileIndex file, std::uint64_t version) const {
  BDISK_CHECK(file < program_.file_count());
  const broadcast::ProgramFile& pf = program_.files()[file];
  // Deterministic synthetic snapshot: seeded by (seed, file, version).
  Rng rng(options_.content_seed * 0x9E3779B97F4A7C15ULL + file * 1000003ULL +
          version);
  std::vector<std::uint8_t> data(pf.m * options_.block_size);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.Uniform(256));
  return data;
}

Result<std::optional<ida::Block>> VersionedBroadcastServer::TransmissionAt(
    std::uint64_t slot) const {
  const auto tx = program_.TransmissionAt(slot);
  if (!tx.has_value()) return std::optional<ida::Block>();
  const std::uint64_t version = VersionAt(tx->file, slot);
  const auto file_id = static_cast<ida::FileId>(tx->file);
  if (options_.store != nullptr) {
    // Disk-backed: on first sight of a (file, version), disperse and
    // persist it (a commit per version exercises the two-generation swap
    // under natural update churn); every transmission is served from
    // disk — the memory cache stays empty.
    if (options_.store->FindEntry(file_id, version) == nullptr) {
      BDISK_ASSIGN_OR_RETURN(
          std::vector<ida::Block> blocks,
          engines_[tx->file].Disperse(file_id, ContentsOf(tx->file, version),
                                      version));
      ida::StampChecksums(&blocks);
      BDISK_RETURN_NOT_OK(options_.store->StageFile(blocks));
      BDISK_RETURN_NOT_OK(options_.store->Commit());
    }
    BDISK_ASSIGN_OR_RETURN(
        ida::Block block,
        options_.store->ReadCodedBlock(file_id, version, tx->block_index));
    return std::optional<ida::Block>(std::move(block));
  }
  const auto key = std::make_pair(tx->file, version);
  auto it = coded_.find(key);
  if (it == coded_.end()) {
    BDISK_ASSIGN_OR_RETURN(
        std::vector<ida::Block> blocks,
        engines_[tx->file].Disperse(file_id, ContentsOf(tx->file, version),
                                    version));
    // Stamped once per (file, version) at dispersal time, like the static
    // server's store.
    ida::StampChecksums(&blocks);
    it = coded_.emplace(key, std::move(blocks)).first;
  }
  return std::optional<ida::Block>(it->second[tx->block_index]);
}

Result<VersionedSessionResult> RunVersionedRetrieval(
    const VersionedBroadcastServer& server, FaultModel* faults,
    broadcast::FileIndex file, std::uint64_t start, std::uint64_t horizon) {
  if (file >= server.program().file_count()) {
    return Status::InvalidArgument("RunVersionedRetrieval: unknown file");
  }
  const broadcast::ProgramFile& pf = server.program().files()[file];
  faults->Reset();

  VersionedSessionResult result;
  std::uint64_t current_version = 0;
  std::vector<ida::Block> collected;
  std::vector<bool> have(pf.n, false);

  for (std::uint64_t t = 0; t < horizon; ++t) {
    const bool lost = faults->Corrupts(t);
    if (t < start) continue;  // Channel state still advances.
    BDISK_ASSIGN_OR_RETURN(std::optional<ida::Block> block,
                           server.TransmissionAt(t));
    if (!block.has_value() || lost) continue;
    if (block->header.file_id != file) continue;

    if (collected.empty() || block->header.version > current_version) {
      // Fresh start (first block, or a newer snapshot invalidates ours).
      if (!collected.empty()) ++result.restarts;
      current_version = block->header.version;
      collected.clear();
      have.assign(pf.n, false);
    } else if (block->header.version < current_version) {
      continue;  // Stale straggler; cannot be combined.
    }
    if (have[block->header.block_index]) continue;
    have[block->header.block_index] = true;
    collected.push_back(*block);
    if (collected.size() == pf.m) {
      result.completed = true;
      result.completion_slot = t;
      result.latency = t - start + 1;
      result.version = current_version;
      result.data_age =
          t - server.VersionStartSlot(file, current_version) + 1;
      break;
    }
  }
  if (result.completed) {
    auto engine =
        ida::Dispersal::Create(pf.m, pf.n, server.block_size());
    BDISK_RETURN_NOT_OK(engine.status());
    BDISK_ASSIGN_OR_RETURN(result.data, engine->Reconstruct(collected));
  }
  return result;
}

}  // namespace bdisk::sim
