#include "sim/event_engine.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/check.h"
#include "obs/registry.h"
#include "obs/snapshot.h"
#include "obs/trace.h"
#include "runtime/parallel_for.h"
#include "runtime/thread_pool.h"
#include "sim/simulation.h"
#include "sim/trace_walk.h"

namespace bdisk::sim {

void EventHeap::Push(const Event& e) {
  heap_.push_back(e);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!Before(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

EventHeap::Event EventHeap::Pop() {
  BDISK_DCHECK(!heap_.empty());
  const Event top = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  std::size_t i = 0;
  while (true) {
    const std::size_t left = 2 * i + 1;
    std::size_t smallest = i;
    if (left < n && Before(heap_[left], heap_[smallest])) smallest = left;
    if (left + 1 < n && Before(heap_[left + 1], heap_[smallest])) {
      smallest = left + 1;
    }
    if (smallest == i) break;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
  return top;
}

EventEngine::EventEngine(const broadcast::BroadcastProgram& program,
                         const std::vector<faults::FaultType>& faults)
    : faults_(&faults) {
  epochs_.push_back(
      EpochRef{0, std::numeric_limits<std::uint64_t>::max(), &program});
}

EventEngine::EventEngine(const EpochSchedule& schedule,
                         const std::vector<faults::FaultType>& faults)
    : faults_(&faults) {
  const auto& epochs = schedule.epochs();
  for (std::size_t e = 0; e < epochs.size(); ++e) {
    const std::uint64_t end = e + 1 < epochs.size()
                                  ? epochs[e + 1].start_slot
                                  : std::numeric_limits<std::uint64_t>::max();
    epochs_.push_back(EpochRef{epochs[e].start_slot, end, &epochs[e].program});
  }
}

std::size_t EventEngine::EpochIndexAt(std::uint64_t t) const {
  // Last epoch whose start <= t (first epoch starts at 0).
  const auto it = std::upper_bound(
      epochs_.begin(), epochs_.end(), t,
      [](std::uint64_t slot, const EpochRef& e) { return slot < e.start; });
  BDISK_DCHECK(it != epochs_.begin());
  return static_cast<std::size_t>(it - epochs_.begin()) - 1;
}

std::uint64_t EventEngine::PeriodAt(std::uint64_t t) const {
  return epochs_[EpochIndexAt(t)].program->period();
}

std::optional<EventEngine::NextTx> EventEngine::NextTransmissionOf(
    broadcast::FileIndex file, std::uint64_t from) const {
  const std::uint64_t horizon = faults_->size();
  if (from >= horizon) return std::nullopt;
  for (std::size_t e = EpochIndexAt(from); e < epochs_.size(); ++e) {
    const EpochRef& epoch = epochs_[e];
    if (epoch.start >= horizon) break;
    const std::uint64_t begin = std::max(from, epoch.start);
    const std::uint64_t end = std::min(epoch.end, horizon);
    if (begin >= end) continue;
    // Jump arithmetic within the epoch: occurrences are ascending slots of
    // one period; the k-th transmission of the file *within the epoch*
    // carries block k mod n (epoch-local rotation, sim/epoch.h).
    const broadcast::BroadcastProgram& program = *epoch.program;
    const auto& occ = program.OccurrencesOf(file);
    const std::uint64_t period = program.period();
    const std::uint64_t count = occ.size();
    const std::uint64_t local = begin - epoch.start;
    std::uint64_t q = local / period;
    const std::uint64_t r = local % period;
    std::uint64_t j = static_cast<std::uint64_t>(
        std::lower_bound(occ.begin(), occ.end(), r) - occ.begin());
    if (j == count) {
      ++q;
      j = 0;
    }
    const std::uint64_t abs_slot = epoch.start + q * period + occ[j];
    if (abs_slot < end) {
      const std::uint64_t ordinal = q * count + j;
      const std::uint32_t n = program.files()[file].n;
      return NextTx{abs_slot, static_cast<std::uint32_t>(ordinal % n)};
    }
    // The next occurrence falls past this epoch's end: resume the search
    // at the next epoch's start (its rotation restarts there).
  }
  return std::nullopt;
}

bool EventShardRunner::TestSetHave(ClientState* st, std::uint32_t block,
                                   std::uint32_t n) {
  if (n <= 64) {
    const std::uint64_t bit = 1ULL << block;
    const bool present = (st->have_bits & bit) != 0;
    st->have_bits |= bit;
    return present;
  }
  std::uint64_t& word = arena_[st->spill_offset + block / 64];
  const std::uint64_t bit = 1ULL << (block % 64);
  const bool present = (word & bit) != 0;
  word |= bit;
  return present;
}

bool EventShardRunner::TestSetBase(ClientState* st, std::uint32_t block,
                                   std::uint32_t n) {
  if (n <= 64) {
    const std::uint64_t bit = 1ULL << block;
    const bool present = (st->base_bits & bit) != 0;
    st->base_bits |= bit;
    return present;
  }
  const std::uint32_t words = (n + 63) / 64;
  std::uint64_t& word = arena_[st->spill_offset + words + block / 64];
  const std::uint64_t bit = 1ULL << (block % 64);
  const bool present = (word & bit) != 0;
  word |= bit;
  return present;
}

void EventShardRunner::Prepare(
    std::uint64_t begin, std::uint64_t end,
    const std::function<EventClient(std::uint64_t)>& client_at) {
  const auto& files = engine_->files();
  const std::uint64_t horizon = engine_->horizon();
  states_.assign(static_cast<std::size_t>(end - begin), ClientState{});
  events_ = 0;

  // Pass 1: materialize the client specs and size the spill arena.
  std::uint64_t spill_words = 0;
  for (std::size_t i = 0; i < states_.size(); ++i) {
    const EventClient client = client_at(begin + i);
    BDISK_CHECK(client.file < files.size());
    BDISK_CHECK(client.start_slot < horizon);
    ClientState& st = states_[i];
    st.file = client.file;
    st.start_slot = client.start_slot;
    st.deadline_slots = client.deadline_slots;
    const std::uint32_t n = files[client.file].n;
    if (n > 64) spill_words += 2ULL * ((n + 63) / 64);
  }
  arena_.assign(static_cast<std::size_t>(spill_words), 0);
  BDISK_CHECK(spill_words <= ClientState::kNoSpill);

  // Pass 2: assign spill offsets and seed each client's first event.
  heap_ = EventHeap();
  heap_.Reserve(states_.size());
  std::uint32_t offset = 0;
  for (std::size_t i = 0; i < states_.size(); ++i) {
    ClientState& st = states_[i];
    const std::uint32_t n = files[st.file].n;
    if (n > 64) {
      st.spill_offset = offset;
      offset += 2 * ((n + 63) / 64);
    }
    const auto next = engine_->NextTransmissionOf(st.file, st.start_slot);
    if (!next.has_value()) {
      // No transmission of this file before the horizon: the slot walk
      // would observe nothing — incomplete with zero errors.
      st.flags |= ClientState::kDone;
      continue;
    }
    heap_.Push(EventHeap::Event{next->slot, static_cast<std::uint32_t>(i),
                                next->block});
  }
}

void EventShardRunner::Drain() {
  const auto& files = engine_->files();
  while (!heap_.Empty()) {
    const EventHeap::Event event = heap_.Pop();
    ClientState& st = states_[event.client];
    ++events_;
    const broadcast::ProgramFile& pf = files[st.file];
    // Lossless-baseline walk (stall metric): counts every transmission's
    // block regardless of faults, until it reaches m distinct blocks.
    if ((st.flags & ClientState::kBaselineDone) == 0) {
      if (!TestSetBase(&st, event.block, pf.n)) {
        ++st.base_distinct;
        if (st.base_distinct >= pf.m) {
          st.flags |= ClientState::kBaselineDone;
          st.baseline_slot = event.slot;
        }
      }
    }
    const faults::FaultType fault = engine_->FaultAt(event.slot);
    if (fault != faults::FaultType::kNone) {
      // Lost, or corrupted-and-discarded after checksum detection: no
      // progress on this transmission (same accounting as the slot walk).
      ++st.errors_observed;
      if (fault == faults::FaultType::kCorrupted) ++st.corrupt_detected;
    } else if (!TestSetHave(&st, event.block, pf.n)) {
      ++st.distinct;
      if (st.distinct >= pf.m) {
        st.flags |= ClientState::kCompleted | ClientState::kDone;
        st.completion_slot = event.slot;
        continue;  // Finished: no re-arm.
      }
    }
    const auto next = engine_->NextTransmissionOf(st.file, event.slot + 1);
    if (!next.has_value()) {
      st.flags |= ClientState::kDone;  // Horizon exhausted: incomplete.
      continue;
    }
    heap_.Push(EventHeap::Event{next->slot, event.client, next->block});
  }
}

void EventEngine::RecordRetrievalTrace(obs::TraceSink* sink,
                                       std::uint64_t request_id,
                                       const ClientState& st) const {
  // Derive the outcome with the slot engine's exact semantics so the
  // trigger decision and the span metadata agree byte for byte.
  RetrievalOutcome outcome;
  outcome.completed = (st.flags & ClientState::kCompleted) != 0;
  outcome.errors_observed = st.errors_observed;
  outcome.corrupt_detected = st.corrupt_detected;
  if (outcome.completed) {
    outcome.completion_slot = st.completion_slot;
    outcome.latency = st.completion_slot - st.start_slot + 1;
    outcome.met_deadline =
        st.deadline_slots == 0 || outcome.latency <= st.deadline_slots;
    const std::uint64_t period = PeriodAt(st.start_slot);
    outcome.periods_to_recovery = (outcome.latency + period - 1) / period;
    if (st.errors_observed > 0) {
      BDISK_DCHECK((st.flags & ClientState::kBaselineDone) != 0);
      outcome.stall_slots = st.completion_slot - st.baseline_slot;
    }
  } else {
    outcome.met_deadline = st.deadline_slots == 0;
  }
  const std::uint8_t trigger =
      sink->TriggerFor(request_id, outcome.completed, outcome.met_deadline,
                       outcome.stall_slots);
  if (trigger == 0) return;
  const broadcast::ProgramFile& pf = files()[st.file];
  TraceWalkContext ctx;
  // The event engine finds the next transmission by jump arithmetic — the
  // same O(log occurrences) step its event loop uses.
  ctx.next_tx = [this, file = st.file](std::uint64_t from)
      -> std::optional<std::pair<std::uint64_t, std::uint32_t>> {
    const auto next = NextTransmissionOf(file, from);
    if (!next.has_value()) return std::nullopt;
    return std::make_pair(next->slot, next->block);
  };
  ctx.faults = faults_;
  for (std::size_t e = 1; e < epochs_.size(); ++e) {
    ctx.epoch_starts.push_back(epochs_[e].start);
  }
  ctx.m = pf.m;
  ctx.n = pf.n;
  ctx.horizon = faults_->size();
  sink->Record(BuildRetrievalSpan(ctx, request_id, st.file, pf.name,
                                  st.start_slot, st.deadline_slots, outcome,
                                  trigger));
}

void EventShardRunner::Collect(SimulationMetrics* local,
                               obs::Timeline* timeline,
                               std::uint64_t global_begin,
                               obs::TraceSink* trace) const {
  if (timeline != nullptr) timeline->Reserve(states_.size());
  for (std::size_t i = 0; i < states_.size(); ++i) {
    const ClientState& st = states_[i];
    BDISK_DCHECK((st.flags & ClientState::kDone) != 0);
    if (trace != nullptr) {
      engine_->RecordRetrievalTrace(trace, global_begin + i, st);
    }
    FileMetrics& fm = local->per_file[st.file];
    if ((st.flags & ClientState::kCompleted) != 0) {
      const std::uint64_t latency = st.completion_slot - st.start_slot + 1;
      bool met_deadline = true;
      if (st.deadline_slots > 0) met_deadline = latency <= st.deadline_slots;
      const std::uint64_t period = engine_->PeriodAt(st.start_slot);
      const std::uint64_t periods = (latency + period - 1) / period;
      std::uint64_t stall = 0;
      if (st.errors_observed > 0) {
        // The baseline completes no later than the actual walk (its
        // distinct set is a superset at every slot).
        BDISK_CHECK((st.flags & ClientState::kBaselineDone) != 0);
        stall = st.completion_slot - st.baseline_slot;
      }
      ++fm.completed;
      fm.latency.Add(static_cast<double>(latency));
      fm.stall.Add(static_cast<double>(stall));
      fm.periods_to_recovery.Add(static_cast<double>(periods));
      if (!met_deadline) ++fm.missed_deadline;
      if (timeline != nullptr) {
        timeline->RecordCompleted(st.completion_slot, latency, stall,
                                  met_deadline, st.errors_observed,
                                  st.corrupt_detected);
      }
    } else {
      ++fm.incomplete;
      if (timeline != nullptr) {
        timeline->RecordIncomplete(st.errors_observed, st.corrupt_detected);
      }
    }
    fm.errors_observed += st.errors_observed;
    fm.corrupt_detected += st.corrupt_detected;
  }
}

SimulationMetrics EventEngine::Run(
    std::uint64_t count,
    const std::function<EventClient(std::uint64_t)>& client_at,
    runtime::ThreadPool* pool, EventEngineStats* stats,
    obs::Timeline* timeline, obs::TraceSink* trace) const {
  const std::size_t file_count = files().size();
  const unsigned shards = runtime::ShardCountFor(pool, count);
  std::vector<SimulationMetrics> shard_metrics(shards);
  std::vector<std::uint64_t> shard_events(shards, 0);
  // Shard-local timelines: recording is non-atomic, merging is exact, so
  // the stream stays deterministic at any shard count.
  std::vector<obs::Timeline> shard_timelines;
  if (timeline != nullptr) {
    shard_timelines.assign(
        shards, obs::Timeline(timeline->interval_slots(),
                              timeline->horizon()));
  }
  std::vector<obs::TraceSink> shard_traces;
  if (trace != nullptr) {
    shard_traces.assign(shards, obs::TraceSink(trace->options()));
  }
  obs::HistogramMetric* drain_us = obs::GlobalRegistry().GetHistogram(
      "phase.event_drain_us", obs::PhaseTimerBoundsUs());
  runtime::ParallelFor(
      pool, count, shards, [&](unsigned shard, runtime::ShardRange range) {
        SimulationMetrics& local = shard_metrics[shard];
        local.per_file.resize(file_count);
        EventShardRunner runner(*this);
        runner.Prepare(range.begin, range.end, client_at);
        {
          // One timer per shard drain — never per event.
          obs::ScopedPhaseTimer timer(drain_us);
          runner.Drain();
        }
        runner.Collect(&local,
                       timeline != nullptr ? &shard_timelines[shard] : nullptr,
                       range.begin,
                       trace != nullptr ? &shard_traces[shard] : nullptr);
        shard_events[shard] = runner.events_processed();
      });

  SimulationMetrics metrics;
  metrics.per_file.resize(file_count);
  for (broadcast::FileIndex f = 0; f < file_count; ++f) {
    metrics.per_file[f].file_name = files()[f].name;
  }
  for (const SimulationMetrics& sm : shard_metrics) metrics.Merge(sm);
  if (timeline != nullptr) {
    for (const obs::Timeline& tl : shard_timelines) timeline->Merge(tl);
  }
  if (trace != nullptr) {
    for (obs::TraceSink& tr : shard_traces) trace->Merge(std::move(tr));
  }
  std::uint64_t total_events = 0;
  for (const std::uint64_t e : shard_events) total_events += e;
  obs::GlobalRegistry().GetCounter("sim.events")->Add(total_events);
  obs::GlobalRegistry().GetCounter("sim.clients")->Add(count);
  if (stats != nullptr) {
    stats->clients = count;
    stats->events = total_events;
  }
  return metrics;
}

}  // namespace bdisk::sim
