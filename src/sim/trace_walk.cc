#include "sim/trace_walk.h"

#include "common/check.h"
#include "sim/simulation.h"

namespace bdisk::sim {

obs::TraceSpan BuildRetrievalSpan(const TraceWalkContext& ctx,
                                  std::uint64_t request_id,
                                  std::uint32_t file,
                                  const std::string& file_name,
                                  std::uint64_t start_slot,
                                  std::uint64_t deadline_slots,
                                  const RetrievalOutcome& outcome,
                                  std::uint8_t trigger) {
  BDISK_DCHECK(trigger != 0);
  obs::TraceSpan span;
  span.kind = obs::TraceSpanKind::kRetrieval;
  span.request_id = request_id;
  span.file = file;
  span.file_name = file_name;
  span.start_slot = start_slot;
  span.end_slot =
      outcome.completed ? outcome.completion_slot + 1 : ctx.horizon;
  span.deadline_slots = deadline_slots;
  span.latency = outcome.completed ? outcome.latency : 0;
  span.stall_slots = outcome.stall_slots;
  span.errors_observed = outcome.errors_observed;
  span.corrupt_detected = outcome.corrupt_detected;
  span.completed = outcome.completed;
  span.met_deadline = outcome.met_deadline;
  span.trigger = trigger;

  span.events.push_back(
      obs::TraceEvent{start_slot, obs::TraceEventKind::kArrival, 0, 0});
  // Epoch boundaries at or before the start were already in effect on
  // arrival; later ones are emitted as the walk crosses them.
  std::size_t next_epoch = 0;
  while (next_epoch < ctx.epoch_starts.size() &&
         ctx.epoch_starts[next_epoch] <= start_slot) {
    ++next_epoch;
  }
  const auto emit_epochs_through = [&](std::uint64_t slot) {
    while (next_epoch < ctx.epoch_starts.size() &&
           ctx.epoch_starts[next_epoch] <= slot) {
      span.events.push_back(obs::TraceEvent{
          ctx.epoch_starts[next_epoch], obs::TraceEventKind::kEpoch,
          static_cast<std::uint32_t>(next_epoch + 1), 0});
      ++next_epoch;
    }
  };

  std::vector<bool> have(ctx.n, false);
  std::uint32_t distinct = 0;
  bool completed = false;
  std::uint64_t cursor = start_slot;
  std::uint64_t completion_slot = 0;
  while (!completed) {
    const auto next = ctx.next_tx(cursor);
    if (!next.has_value()) break;
    const auto [slot, block] = *next;
    emit_epochs_through(slot);
    const faults::FaultType fault = (*ctx.faults)[slot];
    if (fault == faults::FaultType::kLost) {
      span.events.push_back(
          obs::TraceEvent{slot, obs::TraceEventKind::kLost, block, distinct});
    } else if (fault == faults::FaultType::kCorrupted) {
      span.events.push_back(obs::TraceEvent{
          slot, obs::TraceEventKind::kCorrupt, block, distinct});
    } else {
      if (!have[block]) {
        have[block] = true;
        ++distinct;
      }
      span.events.push_back(
          obs::TraceEvent{slot, obs::TraceEventKind::kBlock, block, distinct});
      if (distinct >= ctx.m) {
        span.events.push_back(obs::TraceEvent{
            slot, obs::TraceEventKind::kDecodeStart, 0, distinct});
        completed = true;
        completion_slot = slot;
      }
    }
    cursor = slot + 1;
  }
  if (!completed) {
    if (ctx.horizon > 0) emit_epochs_through(ctx.horizon - 1);
    span.events.push_back(obs::TraceEvent{
        ctx.horizon, obs::TraceEventKind::kIncomplete, 0, distinct});
  }

  // The replay must agree with the engine that produced the outcome; any
  // divergence is an engine/walker bug, not a tracing artifact.
  BDISK_CHECK(completed == outcome.completed);
  if (completed) BDISK_CHECK(completion_slot == outcome.completion_slot);
  return span;
}

}  // namespace bdisk::sim
