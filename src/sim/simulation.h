/// \file simulation.h
/// \brief Discrete-slot simulation of clients retrieving files from a
/// broadcast disk over a faulty channel.
///
/// The simulator works at the block-index level (which transmissions a
/// client hears and which dispersed block each carries); the byte-level
/// data plane with real IDA arithmetic lives in server.h / client.h and is
/// exercised by the integration tests. Channel realizations are
/// deterministic given the fault model's seed, so experiments are exactly
/// reproducible.

#ifndef BDISK_SIM_SIMULATION_H_
#define BDISK_SIM_SIMULATION_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "bdisk/delay_analysis.h"
#include "bdisk/program.h"
#include "common/random.h"
#include "common/status.h"
#include "faults/channel_model.h"
#include "sim/epoch.h"
#include "sim/fault_model.h"
#include "sim/metrics.h"

namespace bdisk::obs {
class Timeline;
class TraceSink;
}  // namespace bdisk::obs

namespace bdisk::runtime {
class ThreadPool;
}  // namespace bdisk::runtime

namespace bdisk::sim {

/// \brief One client retrieval request.
struct ClientRequest {
  broadcast::FileIndex file = 0;
  /// Slot at which the client starts listening.
  std::uint64_t start_slot = 0;
  /// Latency budget in slots (0 = no deadline).
  std::uint64_t deadline_slots = 0;
  /// Retrieval semantics (IDA: any m distinct blocks; flat: specific m).
  broadcast::ClientModel model = broadcast::ClientModel::kIda;
};

/// \brief Result of one retrieval.
struct RetrievalOutcome {
  /// True iff the client collected everything before the horizon.
  bool completed = false;
  /// Completion slot (valid when completed).
  std::uint64_t completion_slot = 0;
  /// Latency in slots, start to completion inclusive (valid when completed).
  std::uint64_t latency = 0;
  /// Deadline verdict (true when no deadline was set or it was met).
  bool met_deadline = true;
  /// Faulty (lost or corrupted) transmissions of the requested file(s) the
  /// client heard.
  std::uint32_t errors_observed = 0;
  /// Corrupted-and-detected transmissions among errors_observed.
  std::uint32_t corrupt_detected = 0;
  /// Reconstruction stall: latency minus the latency this request would
  /// have had on the lossless channel (valid when completed; 0 when no
  /// fault touched the request).
  std::uint64_t stall_slots = 0;
  /// Broadcast periods spanned before recovery, ceil(latency / period) of
  /// the program governing the start slot (valid when completed).
  std::uint64_t periods_to_recovery = 0;
};

/// \brief Workload description: independent clients with random start slots.
struct WorkloadConfig {
  /// Retrieval attempts per file.
  std::uint64_t requests_per_file = 1000;
  /// Deadline per file in slots; 0 entries mean "use the file's d^(0)";
  /// empty vector means all files use their d^(0) (or no deadline if the
  /// file has no latency vector).
  std::vector<std::uint64_t> deadline_slots;
  /// Client retrieval semantics.
  broadcast::ClientModel model = broadcast::ClientModel::kIda;
  /// Base RNG seed for start-slot sampling. Draws are indexed, not
  /// sequential: request k of file f samples from RNG stream
  /// `f * requests_per_file + k` of this seed
  /// (runtime::StreamRng), so every request's randomness is independent of
  /// execution order — results are identical for any shard/thread count.
  std::uint64_t seed = 42;
};

/// \brief A real-time transaction touching several data items: it fires at
/// `start_slot` and must have reconstructed *every* listed file within the
/// deadline (the paper's RTDB setting — e.g. an active AWACS transaction
/// reading several object positions before raising an alert).
struct TransactionRequest {
  std::vector<broadcast::FileIndex> files;
  std::uint64_t start_slot = 0;
  /// Joint latency budget in slots (0 = no deadline).
  std::uint64_t deadline_slots = 0;
  broadcast::ClientModel model = broadcast::ClientModel::kIda;
};

/// \brief Workload of independent multi-item transactions: each fires at a
/// random start slot and reads a random `files_per_transaction`-subset of
/// the program's files under one joint deadline.
struct TransactionWorkloadConfig {
  /// Number of transactions to simulate.
  std::uint64_t transactions = 1000;
  /// Data items read per transaction (1 <= value <= file count).
  std::size_t files_per_transaction = 2;
  /// Joint latency budget in slots (0 = no deadline).
  std::uint64_t deadline_slots = 0;
  /// Client retrieval semantics.
  broadcast::ClientModel model = broadcast::ClientModel::kIda;
  /// Base RNG seed; transaction t draws from stream t (runtime::StreamRng),
  /// making results independent of execution order and shard count.
  std::uint64_t seed = 42;
};

/// \brief Completion slot of a faultless distinct-block walk: from
/// `start`, count distinct block indices of `file` among `tx_at(t)` for
/// t in [start, end); returns the slot at which the m-th distinct index
/// arrives (nullopt if it never does). This is the single definition of
/// the stall-metric lossless baseline, shared by the index-level
/// simulator and the byte-level retrieval session.
std::optional<std::uint64_t> LosslessCompletionWalk(
    const std::function<std::optional<broadcast::TransmissionRef>(
        std::uint64_t)>& tx_at,
    broadcast::FileIndex file, std::uint32_t m, std::uint32_t n,
    std::uint64_t start, std::uint64_t end);

/// \brief Block-index-level broadcast-disk simulator.
class Simulator {
 public:
  /// \param program   the broadcast program to execute (borrowed).
  /// \param faults    channel fault model (borrowed; Reset() + replayed).
  /// \param horizon   number of slots of channel realization to simulate.
  Simulator(const broadcast::BroadcastProgram& program, FaultModel* faults,
            std::uint64_t horizon);

  /// Epoch-aware variant: executes `schedule` (borrowed), whose program may
  /// hot-swap at period boundaries. Retrievals transparently span swaps —
  /// the epoch geometry contract (sim/epoch.h) guarantees blocks collected
  /// under different epochs remain mutually reconstructing.
  Simulator(const EpochSchedule& schedule, FaultModel* faults,
            std::uint64_t horizon);

  /// Channel-model variants: the fault realization is the model's
  /// counter-based trace over [0, horizon), so it is reproducible from the
  /// channel's seed alone and identical at any shard or thread count. At
  /// the block-index level a corrupted transmission behaves like a loss
  /// (the byte-level client detects it by checksum and discards it) but is
  /// additionally counted in RetrievalOutcome::corrupt_detected.
  Simulator(const broadcast::BroadcastProgram& program,
            const faults::ChannelModel& channel, std::uint64_t horizon);
  Simulator(const EpochSchedule& schedule,
            const faults::ChannelModel& channel, std::uint64_t horizon);

  /// Executes a single retrieval against the precomputed channel
  /// realization. Fails on an unknown file or a start beyond the horizon.
  Result<RetrievalOutcome> Retrieve(const ClientRequest& request) const;

  /// Executes a multi-item transaction: completes when the last of its
  /// files completes; `errors_observed` sums over all files.
  Result<RetrievalOutcome> RetrieveTransaction(
      const TransactionRequest& request) const;

  /// Runs `config.requests_per_file` random-start retrievals per file and
  /// aggregates the outcomes.
  ///
  /// With a non-null `pool`, requests are sharded across its workers and
  /// per-shard metrics are merged; because draws are indexed by request
  /// (WorkloadConfig::seed) and the stats accumulators merge exactly, the
  /// result is bit-identical to the serial path for any thread count.
  ///
  /// A non-null `timeline` (obs/snapshot.h; geometry covering this
  /// horizon) additionally receives every outcome bucketed by completion
  /// slot, under the same exact-merge determinism contract — the rendered
  /// snapshot stream is byte-identical at any thread count and across the
  /// slot and event engines.
  ///
  /// A non-null `trace` (obs/trace.h) captures the causal span of every
  /// request its options trigger on (counter-based sampling by global
  /// request index plus anomaly triggers), built post hoc by the shared
  /// walker (sim/trace_walk.h). Shard-local sinks merge in shard order,
  /// so the rendered trace is byte-identical at any thread count and
  /// across both engines.
  Result<SimulationMetrics> RunWorkload(const WorkloadConfig& config,
                                        runtime::ThreadPool* pool = nullptr,
                                        obs::Timeline* timeline = nullptr,
                                        obs::TraceSink* trace =
                                            nullptr) const;

  /// Discrete-event equivalent of RunWorkload (sim/event_engine.h): the
  /// identical request generation (same counter-based per-request draws),
  /// the identical validation, and a *byte-identical* SimulationMetrics
  /// snapshot (MetricsToJson) at any thread count — but each retrieval
  /// costs O(transmissions of its file heard) instead of O(slots spanned),
  /// which is what scales the simulator to million-client fleets.
  Result<SimulationMetrics> RunWorkloadEvented(const WorkloadConfig& config,
                                               runtime::ThreadPool* pool =
                                                   nullptr,
                                               obs::Timeline* timeline =
                                                   nullptr,
                                               obs::TraceSink* trace =
                                                   nullptr) const;

  /// Runs `config.transactions` random multi-item transactions and
  /// aggregates the outcomes. Same sharding and determinism contract as
  /// RunWorkload.
  Result<TransactionMetrics> RunTransactionWorkload(
      const TransactionWorkloadConfig& config,
      runtime::ThreadPool* pool = nullptr) const;

  /// Replays an explicit request list (e.g. a recorded or generated trace)
  /// and aggregates per-file metrics. Requests are sharded by index across
  /// `pool` with the usual exact-merge determinism contract; results are
  /// bit-identical to the serial path at any thread count. Fails up front
  /// on any invalid request (unknown file, start beyond the horizon).
  Result<SimulationMetrics> RunRequests(
      const std::vector<ClientRequest>& requests,
      runtime::ThreadPool* pool = nullptr,
      obs::Timeline* timeline = nullptr,
      obs::TraceSink* trace = nullptr) const;

  /// Number of faulty (lost or corrupted) slots in the realization
  /// (diagnostics).
  std::uint64_t CorruptedSlotCount() const;

  std::uint64_t horizon() const { return faults_.size(); }

 private:
  /// Shared file table (epoch geometry is invariant, so epoch 0's in epoch
  /// mode).
  const std::vector<broadcast::ProgramFile>& files() const;
  /// Transmission at absolute slot `t` under the program or schedule.
  std::optional<broadcast::TransmissionRef> TxAt(std::uint64_t t) const;
  /// Largest data cycle (horizon-tail sizing).
  std::uint64_t MaxDataCycle() const;
  /// Completion slot of a faultless retrieval of `file` from `start`
  /// (nullopt when even the lossless channel cannot complete it within the
  /// horizon) — the stall baseline.
  std::optional<std::uint64_t> LosslessCompletionSlot(
      broadcast::FileIndex file, std::uint64_t start) const;
  /// Period of the program governing slot `t`.
  std::uint64_t PeriodAt(std::uint64_t t) const;
  /// Shared up-front validation of RunWorkload / RunWorkloadEvented:
  /// resolves the per-file deadline and admissible start range (identical
  /// status messages on both paths, so the engines agree on errors too).
  Status ValidateWorkload(const WorkloadConfig& config,
                          std::vector<std::uint64_t>* deadlines,
                          std::vector<std::uint64_t>* start_ranges) const;
  /// Captures `request`'s causal span into `sink` when its options
  /// trigger on the (request_id, outcome) pair; no-op otherwise.
  void RecordTraceSpan(obs::TraceSink* sink, std::uint64_t request_id,
                       const ClientRequest& request,
                       const RetrievalOutcome& outcome) const;

  // Exactly one of the two is non-null.
  const broadcast::BroadcastProgram* program_ = nullptr;
  const EpochSchedule* schedule_ = nullptr;
  // One fault effect per slot of the realization.
  std::vector<faults::FaultType> faults_;
};

}  // namespace bdisk::sim

#endif  // BDISK_SIM_SIMULATION_H_
