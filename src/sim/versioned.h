/// \file versioned.h
/// \brief Versioned broadcast: updates and absolute temporal consistency.
///
/// The paper's motivating constraint is *absolute temporal consistency*
/// (Section 1): "the data item in an AWACS recording the position of an
/// aircraft with a velocity of 900 km/hour may be subject to an absolute
/// temporal consistency constraint of 400 msecs". The server therefore
/// re-disperses items as they are updated — and that interacts with IDA
/// in a subtle way: coded blocks are linear combinations of one snapshot,
/// so blocks of *different versions must never be combined*. The data-cycle
/// rotation that makes AIDA work spreads a version's blocks across
/// periods, so a client that straddles an update boundary must discard its
/// partial collection and restart.
///
/// This module provides a version-aware server (re-disperses per update
/// interval, stamps headers), a version-aware client session (restarts on
/// newer versions, never mixes), and the resulting metrics: retrieval
/// latency, number of restarts, and *data age* at completion — the
/// quantity a temporal-consistency constraint bounds.

#ifndef BDISK_SIM_VERSIONED_H_
#define BDISK_SIM_VERSIONED_H_

#include <cstdint>
#include <map>
#include <vector>

#include "bdisk/program.h"
#include "common/status.h"
#include "ida/dispersal.h"
#include "sim/fault_model.h"
#include "store/block_store.h"

namespace bdisk::sim {

/// \brief Options for the versioned server.
struct VersionedServerOptions {
  /// Payload bytes per block.
  std::size_t block_size = 64;
  /// Per-file update interval in slots; 0 means the file never updates.
  /// Shorter than the file's retrieval time makes it unretrievable (the
  /// temporal-consistency feasibility constraint).
  std::vector<std::uint64_t> update_interval_slots;
  /// Seed for the deterministic per-version synthetic contents.
  std::uint64_t content_seed = 1;
  /// Optional persistent backing (not owned; must outlive the server).
  /// When set, every (file, version) dispersal is committed to the store
  /// on first transmission — one generation per version, exercising the
  /// crash-safe swap under natural update churn — and transmissions are
  /// served from disk through the checksum-verified read path.
  store::BlockStore* store = nullptr;
};

/// \brief Broadcast server whose files are updated over time; every
/// transmission carries the *current* version's coded block.
class VersionedBroadcastServer {
 public:
  static Result<VersionedBroadcastServer> Create(
      broadcast::BroadcastProgram program, VersionedServerOptions options);

  /// Version of `file` current at `slot` (slot / update interval).
  std::uint64_t VersionAt(broadcast::FileIndex file, std::uint64_t slot) const;

  /// First slot at which `version` of `file` became current.
  std::uint64_t VersionStartSlot(broadcast::FileIndex file,
                                 std::uint64_t version) const;

  /// Ground-truth contents of `file` at `version` (deterministic from the
  /// seed; used by tests to check byte-exactness).
  std::vector<std::uint8_t> ContentsOf(broadcast::FileIndex file,
                                       std::uint64_t version) const;

  /// The coded block transmitted at `slot` (nullopt when idle).
  Result<std::optional<ida::Block>> TransmissionAt(std::uint64_t slot) const;

  const broadcast::BroadcastProgram& program() const { return program_; }
  std::size_t block_size() const { return options_.block_size; }

 private:
  VersionedBroadcastServer(broadcast::BroadcastProgram program,
                           VersionedServerOptions options)
      : program_(std::move(program)), options_(std::move(options)) {}

  broadcast::BroadcastProgram program_;
  VersionedServerOptions options_;
  std::vector<ida::Dispersal> engines_;
  // Cache of dispersed blocks keyed by (file, version).
  mutable std::map<std::pair<broadcast::FileIndex, std::uint64_t>,
                   std::vector<ida::Block>>
      coded_;
};

/// \brief Outcome of a version-aware retrieval session.
struct VersionedSessionResult {
  bool completed = false;
  std::uint64_t completion_slot = 0;
  /// Start-to-completion, inclusive.
  std::uint64_t latency = 0;
  /// The version actually retrieved.
  std::uint64_t version = 0;
  /// Slots between the retrieved version's creation and completion — the
  /// quantity an absolute temporal-consistency constraint bounds.
  std::uint64_t data_age = 0;
  /// Partial collections discarded because a newer version appeared.
  std::uint32_t restarts = 0;
  std::vector<std::uint8_t> data;
};

/// \brief Runs a version-aware retrieval: collect blocks of the newest
/// version seen, discarding stale partials; reconstruct at m distinct
/// blocks of one version.
Result<VersionedSessionResult> RunVersionedRetrieval(
    const VersionedBroadcastServer& server, FaultModel* faults,
    broadcast::FileIndex file, std::uint64_t start, std::uint64_t horizon);

}  // namespace bdisk::sim

#endif  // BDISK_SIM_VERSIONED_H_
