/// \file metrics.h
/// \brief Aggregated results of a broadcast-disk simulation run.

#ifndef BDISK_SIM_METRICS_H_
#define BDISK_SIM_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"

namespace bdisk::sim {

/// \brief Aggregated outcomes of one stream of retrieval attempts (a
/// file's requests, or a transaction workload).
struct OutcomeStats {
  /// Latency (slots, start to completion inclusive) of completed attempts.
  RunningStats latency;
  /// Completed within the simulation horizon.
  std::uint64_t completed = 0;
  /// Completed but after the deadline.
  std::uint64_t missed_deadline = 0;
  /// Still incomplete when the horizon ended (counted as deadline misses in
  /// MissRate()).
  std::uint64_t incomplete = 0;
  /// Corrupted transmissions observed by the attempts.
  std::uint64_t errors_observed = 0;

  std::uint64_t attempts() const { return completed + incomplete; }

  /// Fraction of attempts that missed their deadline (incomplete counts as
  /// a miss).
  double MissRate() const {
    const std::uint64_t a = attempts();
    if (a == 0) return 0.0;
    return static_cast<double>(missed_deadline + incomplete) /
           static_cast<double>(a);
  }

  /// Merges another shard's outcomes into this one. Exactly
  /// order-independent (counts are integers; latency merging is
  /// RunningStats::Merge).
  void Merge(const OutcomeStats& other) {
    latency.Merge(other.latency);
    completed += other.completed;
    missed_deadline += other.missed_deadline;
    incomplete += other.incomplete;
    errors_observed += other.errors_observed;
  }
};

/// \brief Per-file retrieval statistics.
struct FileMetrics : OutcomeStats {
  std::string file_name;

  /// Merges another shard's outcomes for the same file into this one.
  void Merge(const FileMetrics& other) {
    OutcomeStats::Merge(other);
    if (file_name.empty()) file_name = other.file_name;
  }
};

/// \brief Whole-run statistics.
struct SimulationMetrics {
  std::vector<FileMetrics> per_file;

  /// Attempts across all files.
  std::uint64_t TotalAttempts() const;
  /// Deadline-miss rate across all files.
  double OverallMissRate() const;
  /// Mean latency across all completed retrievals.
  double OverallMeanLatency() const;
  /// Max latency across all completed retrievals.
  double OverallMaxLatency() const;

  /// Table rendering, one line per file.
  std::string ToString() const;

  /// Merges another run over the same program (file-by-file). The other
  /// run's per_file must be empty or the same size as this one's.
  void Merge(const SimulationMetrics& other);
};

/// \brief Aggregated outcomes of a transaction workload
/// (Simulator::RunTransactionWorkload): latency is the joint (last-item)
/// latency, errors sum over all items of all transactions.
struct TransactionMetrics : OutcomeStats {};

}  // namespace bdisk::sim

#endif  // BDISK_SIM_METRICS_H_
