/// \file metrics.h
/// \brief Aggregated results of a broadcast-disk simulation run.

#ifndef BDISK_SIM_METRICS_H_
#define BDISK_SIM_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"

namespace bdisk::sim {

/// \brief Per-file retrieval statistics.
struct FileMetrics {
  std::string file_name;
  /// Latency (slots, start to completion inclusive) of completed retrievals.
  RunningStats latency;
  /// Completed within the simulation horizon.
  std::uint64_t completed = 0;
  /// Completed but after the deadline.
  std::uint64_t missed_deadline = 0;
  /// Still incomplete when the horizon ended (counted as deadline misses in
  /// MissRate()).
  std::uint64_t incomplete = 0;
  /// Corrupted transmissions of this file observed by its clients.
  std::uint64_t errors_observed = 0;

  std::uint64_t attempts() const { return completed + incomplete; }

  /// Fraction of attempts that missed their deadline (incomplete counts as
  /// a miss).
  double MissRate() const {
    const std::uint64_t a = attempts();
    if (a == 0) return 0.0;
    return static_cast<double>(missed_deadline + incomplete) /
           static_cast<double>(a);
  }
};

/// \brief Whole-run statistics.
struct SimulationMetrics {
  std::vector<FileMetrics> per_file;

  /// Attempts across all files.
  std::uint64_t TotalAttempts() const;
  /// Deadline-miss rate across all files.
  double OverallMissRate() const;
  /// Mean latency across all completed retrievals.
  double OverallMeanLatency() const;
  /// Max latency across all completed retrievals.
  double OverallMaxLatency() const;

  /// Table rendering, one line per file.
  std::string ToString() const;
};

}  // namespace bdisk::sim

#endif  // BDISK_SIM_METRICS_H_
