/// \file metrics.h
/// \brief Aggregated results of a broadcast-disk simulation run.

#ifndef BDISK_SIM_METRICS_H_
#define BDISK_SIM_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"

namespace bdisk::sim {

/// \brief Aggregated outcomes of one stream of retrieval attempts (a
/// file's requests, or a transaction workload).
struct OutcomeStats {
  /// Latency (slots, start to completion inclusive) of completed attempts.
  RunningStats latency;
  /// Reconstruction stall time (slots) of completed attempts: actual
  /// latency minus the latency the same request would have had on the
  /// lossless channel — the pure cost of channel faults.
  RunningStats stall;
  /// Broadcast periods a completed attempt spanned before it recovered m
  /// good blocks (ceil(latency / period of the program governing the
  /// start slot)): 1 means "within the first period", more means the
  /// client had to wait for later periods (or epochs) to fill the gaps.
  RunningStats periods_to_recovery;
  /// Completed within the simulation horizon.
  std::uint64_t completed = 0;
  /// Completed but after the deadline.
  std::uint64_t missed_deadline = 0;
  /// Still incomplete when the horizon ended (counted as deadline misses in
  /// MissRate()).
  std::uint64_t incomplete = 0;
  /// Faulty transmissions (lost or corrupted) of the requested file(s)
  /// observed by the attempts.
  std::uint64_t errors_observed = 0;
  /// Corrupted-and-detected transmissions among errors_observed.
  std::uint64_t corrupt_detected = 0;

  std::uint64_t attempts() const { return completed + incomplete; }

  /// Fraction of attempts that missed their deadline (incomplete counts as
  /// a miss).
  double MissRate() const {
    const std::uint64_t a = attempts();
    if (a == 0) return 0.0;
    return static_cast<double>(missed_deadline + incomplete) /
           static_cast<double>(a);
  }

  /// Fraction of attempts that never recovered m good blocks within the
  /// horizon — the undecodable-file rate of the (channel, redundancy)
  /// operating point.
  double UndecodableRate() const {
    const std::uint64_t a = attempts();
    if (a == 0) return 0.0;
    return static_cast<double>(incomplete) / static_cast<double>(a);
  }

  /// Merges another shard's outcomes into this one. Exactly
  /// order-independent (counts are integers; stats merging is
  /// RunningStats::Merge over integer-valued observations).
  void Merge(const OutcomeStats& other) {
    latency.Merge(other.latency);
    stall.Merge(other.stall);
    periods_to_recovery.Merge(other.periods_to_recovery);
    completed += other.completed;
    missed_deadline += other.missed_deadline;
    incomplete += other.incomplete;
    errors_observed += other.errors_observed;
    corrupt_detected += other.corrupt_detected;
  }
};

/// \brief Per-file retrieval statistics.
struct FileMetrics : OutcomeStats {
  std::string file_name;

  /// Merges another shard's outcomes for the same file into this one.
  void Merge(const FileMetrics& other) {
    OutcomeStats::Merge(other);
    if (file_name.empty()) file_name = other.file_name;
  }
};

/// \brief Whole-run statistics.
struct SimulationMetrics {
  std::vector<FileMetrics> per_file;

  /// Attempts across all files.
  std::uint64_t TotalAttempts() const;
  /// Deadline-miss rate across all files.
  double OverallMissRate() const;
  /// Mean latency across all completed retrievals.
  double OverallMeanLatency() const;
  /// Max latency across all completed retrievals.
  double OverallMaxLatency() const;
  /// Mean reconstruction stall across all completed retrievals.
  double OverallMeanStall() const;
  /// Fraction of attempts that never became decodable within the horizon.
  double OverallUndecodableRate() const;

  /// Table rendering, one line per file.
  std::string ToString() const;

  /// Merges another run over the same program (file-by-file). The other
  /// run's per_file must be empty or the same size as this one's.
  void Merge(const SimulationMetrics& other);
};

/// \brief Canonical JSON snapshot of a full metrics object: every per-file
/// counter and stat plus the overall aggregates, with a stable key order
/// and lossless (%.17g) doubles, so two runs are bit-identical iff their
/// serializations are string-identical. The scenario regression harness
/// diffs these against committed goldens, and the benches emit them for
/// trajectory capture.
std::string MetricsToJson(const SimulationMetrics& metrics);

/// \brief Aggregated outcomes of a transaction workload
/// (Simulator::RunTransactionWorkload): latency is the joint (last-item)
/// latency, errors sum over all items of all transactions.
struct TransactionMetrics : OutcomeStats {};

}  // namespace bdisk::sim

#endif  // BDISK_SIM_METRICS_H_
