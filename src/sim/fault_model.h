/// \file fault_model.h
/// \brief Channel fault models for the broadcast-disk simulator.
///
/// The paper's broadcast medium model: "individual transmission errors occur
/// independently of each other, and the occurrence of an error during the
/// transmission of a block renders the entire block unreadable"
/// (Section 3.2). BernoulliFaultModel implements exactly that; the
/// Gilbert-Elliott model adds the bursty losses typical of the wireless
/// links the paper targets; SlotSetFaultModel injects deterministic faults
/// for tests and worst-case experiments.
///
/// A model is sampled once per slot, in increasing slot order, via
/// Corrupts(slot); stateful models (Gilbert-Elliott) advance their channel
/// state on each call.

#ifndef BDISK_SIM_FAULT_MODEL_H_
#define BDISK_SIM_FAULT_MODEL_H_

#include <cstdint>
#include <unordered_set>

#include "common/random.h"

namespace bdisk::sim {

/// \brief Per-slot transmission corruption decision.
class FaultModel {
 public:
  virtual ~FaultModel() = default;

  /// True iff the transmission in `slot` is corrupted. Must be called with
  /// non-decreasing slot numbers.
  virtual bool Corrupts(std::uint64_t slot) = 0;

  /// Resets internal state (and reseeds stochastic models deterministically)
  /// so a fresh channel realization can be generated.
  virtual void Reset() = 0;
};

/// \brief The fault-free channel.
class NoFaultModel final : public FaultModel {
 public:
  bool Corrupts(std::uint64_t) override { return false; }
  void Reset() override {}
};

/// \brief Independent per-slot losses with probability p (paper's model).
class BernoulliFaultModel final : public FaultModel {
 public:
  BernoulliFaultModel(double loss_probability, std::uint64_t seed)
      : p_(loss_probability), seed_(seed), rng_(seed) {}

  bool Corrupts(std::uint64_t) override { return rng_.Bernoulli(p_); }
  void Reset() override { rng_.Seed(seed_); }

 private:
  double p_;
  std::uint64_t seed_;
  Rng rng_;
};

/// \brief Two-state bursty channel (Gilbert-Elliott).
///
/// The channel is in a Good or Bad state; each slot it loses the block with
/// that state's probability, then transitions. Default loss probabilities
/// (0 good / 1 bad) give the classic Gilbert model.
class GilbertElliottFaultModel final : public FaultModel {
 public:
  struct Params {
    /// P(Good -> Bad) per slot.
    double p_good_to_bad = 0.01;
    /// P(Bad -> Good) per slot.
    double p_bad_to_good = 0.25;
    /// Loss probability while Good.
    double loss_good = 0.0;
    /// Loss probability while Bad.
    double loss_bad = 1.0;
  };

  GilbertElliottFaultModel(const Params& params, std::uint64_t seed)
      : params_(params), seed_(seed), rng_(seed) {}

  bool Corrupts(std::uint64_t) override {
    const bool lost = rng_.Bernoulli(bad_ ? params_.loss_bad
                                          : params_.loss_good);
    bad_ = bad_ ? !rng_.Bernoulli(params_.p_bad_to_good)
                : rng_.Bernoulli(params_.p_good_to_bad);
    return lost;
  }

  void Reset() override {
    rng_.Seed(seed_);
    bad_ = false;
  }

  /// Stationary loss probability of the configured chain.
  double StationaryLossRate() const;

 private:
  Params params_;
  std::uint64_t seed_;
  Rng rng_;
  bool bad_ = false;
};

/// \brief Deterministic fault injection: exactly the listed slots are lost.
class SlotSetFaultModel final : public FaultModel {
 public:
  explicit SlotSetFaultModel(std::unordered_set<std::uint64_t> slots)
      : slots_(std::move(slots)) {}

  bool Corrupts(std::uint64_t slot) override {
    return slots_.count(slot) != 0;
  }
  void Reset() override {}

 private:
  std::unordered_set<std::uint64_t> slots_;
};

}  // namespace bdisk::sim

#endif  // BDISK_SIM_FAULT_MODEL_H_
