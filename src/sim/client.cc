#include "sim/client.h"

#include <algorithm>

#include "common/check.h"
#include "sim/simulation.h"

namespace bdisk::sim {

ReconstructingClient::ReconstructingClient(ida::FileId file, std::uint32_t m,
                                           std::uint32_t n,
                                           std::size_t block_size)
    : file_(file), m_(m), n_(n),
      engine_([&] {
        auto e = ida::Dispersal::Create(m, n, block_size);
        BDISK_CHECK(e.ok());
        return std::move(*e);
      }()),
      have_(n, false) {
  buffer_.reserve(m);
}

OfferOutcome ReconstructingClient::OfferEx(const ida::Block& block,
                                           std::uint64_t epoch) {
  // The cheap file filter runs before the O(payload) checksum: on a
  // broadcast channel most offered blocks belong to other files and one
  // uint32 compare discards them. Filtering on the (unverified) file_id
  // is safe — a block whose damaged file_id points elsewhere is discarded
  // either way, and one damaged *into* our id still hits the integrity
  // check below before any other header field is trusted.
  if (block.header.file_id != file_) return OfferOutcome::kWrongFile;
  const ida::ChecksumState checksum = ida::VerifyChecksum(block);
  if (checksum == ida::ChecksumState::kMismatch ||
      (require_checksums_ && checksum == ida::ChecksumState::kUnstamped)) {
    ++checksum_rejected_;
    return OfferOutcome::kChecksumMismatch;
  }
  if (block.header.reconstruct_threshold != m_ ||
      block.header.total_blocks != n_ || block.header.block_index >= n_) {
    return OfferOutcome::kMalformedHeader;
  }
  if (CanReconstruct()) return OfferOutcome::kAlreadyComplete;
  if (version_.has_value() && block.header.version != *version_) {
    if (block.header.version < *version_) {
      // An older snapshot's block: IDA's linear combination only inverts
      // against one consistent snapshot, so it can never be combined with
      // the buffered ones. Reject explicitly instead of letting
      // Reconstruct() fail later (or worse, silently overwriting).
      ++stale_rejected_;
      return OfferOutcome::kStaleVersion;
    }
    // A newer snapshot appeared: the buffered partial collection is the
    // stale one now. Discard and restart on the new version.
    Clear();
    ++restarts_;
  }
  if (have_[block.header.block_index]) {
    ++duplicates_rejected_;
    return OfferOutcome::kDuplicate;
  }
  version_ = block.header.version;
  have_[block.header.block_index] = true;
  ++distinct_;
  buffer_.push_back(block);
  block_epochs_.push_back(epoch);
  return CanReconstruct() ? OfferOutcome::kCompleted
                          : OfferOutcome::kAccepted;
}

std::uint32_t ReconstructingClient::EpochsSpanned() const {
  std::uint32_t distinct_epochs = 0;
  for (std::size_t i = 0; i < block_epochs_.size(); ++i) {
    bool seen = false;
    for (std::size_t j = 0; j < i; ++j) {
      if (block_epochs_[j] == block_epochs_[i]) {
        seen = true;
        break;
      }
    }
    if (!seen) ++distinct_epochs;
  }
  return distinct_epochs;
}

Result<std::vector<std::uint8_t>> ReconstructingClient::Reconstruct() const {
  if (!CanReconstruct()) {
    return Status::DataLoss("ReconstructingClient: only " +
                            std::to_string(distinct_) + " of " +
                            std::to_string(m_) + " blocks collected");
  }
  return engine_.Reconstruct(buffer_);
}

void ReconstructingClient::Clear() {
  have_.assign(n_, false);
  distinct_ = 0;
  buffer_.clear();
  block_epochs_.clear();
  version_.reset();
}

Result<SessionResult> RunRetrievalSession(const BroadcastServer& server,
                                          FaultModel* faults,
                                          broadcast::FileIndex file,
                                          std::uint64_t start_slot,
                                          std::uint64_t horizon) {
  if (file >= server.program().file_count()) {
    return Status::InvalidArgument("RunRetrievalSession: unknown file");
  }
  const broadcast::ProgramFile& pf = server.program().files()[file];
  ReconstructingClient client(static_cast<ida::FileId>(file), pf.m, pf.n,
                              server.block_size());
  faults->Reset();
  SessionResult result;
  for (std::uint64_t t = 0; t < horizon; ++t) {
    const bool lost = faults->Corrupts(t);
    if (t < start_slot) continue;  // Channel state still advances.
    const auto block = server.TransmissionAt(t);
    if (!block.has_value() || lost) continue;
    if (client.Offer(*block, server.schedule().EpochIndexAt(t))) {
      result.completed = true;
      result.completion_slot = t;
      result.latency = t - start_slot + 1;
      break;
    }
  }
  result.epochs_spanned = client.EpochsSpanned();
  if (result.completed) {
    BDISK_ASSIGN_OR_RETURN(result.data, client.Reconstruct());
  }
  return result;
}

namespace {

// Completion slot of a faultless byte-level session (index walk only — no
// payload copies): the stall baseline, on the shared walk definition.
std::optional<std::uint64_t> LosslessSessionCompletion(
    const BroadcastServer& server, broadcast::FileIndex file,
    std::uint64_t start_slot, std::uint64_t horizon) {
  const broadcast::ProgramFile& pf = server.program().files()[file];
  return LosslessCompletionWalk(
      [&server](std::uint64_t t) {
        return server.schedule().TransmissionAt(t);
      },
      file, pf.m, pf.n, start_slot, horizon);
}

}  // namespace

Result<SessionResult> RunRetrievalSession(const BroadcastServer& server,
                                          const faults::ChannelModel& channel,
                                          broadcast::FileIndex file,
                                          std::uint64_t start_slot,
                                          std::uint64_t horizon) {
  if (file >= server.program().file_count()) {
    return Status::InvalidArgument("RunRetrievalSession: unknown file");
  }
  const broadcast::ProgramFile& pf = server.program().files()[file];
  ReconstructingClient client(static_cast<ida::FileId>(file), pf.m, pf.n,
                              server.block_size());
  // The server stamps every transmission, so an unstamped block can only
  // be a corruption artifact; require checksums outright.
  client.set_require_checksums(true);
  SessionResult result;
  // The channel trace is a pure function of the slot, so the session can
  // start listening at start_slot directly — no replay from slot 0. The
  // trace is fetched in chunks via FillFaults so frame-regenerative
  // models (Gilbert-Elliott) walk each frame once instead of O(frame)
  // work per FaultAt call.
  constexpr std::uint64_t kFaultChunk = 1024;
  std::vector<faults::FaultType> chunk;
  std::uint64_t chunk_begin = start_slot;
  for (std::uint64_t t = start_slot; t < horizon; ++t) {
    if (t >= chunk_begin + chunk.size()) {
      chunk_begin = t;
      chunk.resize(std::min(kFaultChunk, horizon - t));
      channel.FillFaults(chunk_begin, chunk_begin + chunk.size(),
                         chunk.data());
    }
    const faults::FaultType fault = chunk[t - chunk_begin];
    auto block = server.TransmissionAt(t);
    if (!block.has_value()) continue;
    const bool ours = block->header.file_id == file;
    if (fault == faults::FaultType::kLost) {
      if (ours) ++result.lost_observed;
      continue;
    }
    if (fault == faults::FaultType::kCorrupted) {
      channel.CorruptBlock(t, &*block);
      // The file identity is ground truth from the server, not from the
      // (possibly damaged) header.
      if (ours) ++result.corrupt_detected;
    }
    if (OfferSatisfied(
            client.OfferEx(*block, server.schedule().EpochIndexAt(t)))) {
      result.completed = true;
      result.completion_slot = t;
      result.latency = t - start_slot + 1;
      break;
    }
  }
  result.epochs_spanned = client.EpochsSpanned();
  if (result.completed) {
    if (result.lost_observed + result.corrupt_detected > 0) {
      const auto baseline =
          LosslessSessionCompletion(server, file, start_slot, horizon);
      BDISK_CHECK(baseline.has_value());  // Completes by result's slot.
      result.stall_slots = result.completion_slot - *baseline;
    }
    BDISK_ASSIGN_OR_RETURN(result.data, client.Reconstruct());
  }
  return result;
}

}  // namespace bdisk::sim
