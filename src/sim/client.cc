#include "sim/client.h"

#include "common/check.h"

namespace bdisk::sim {

ReconstructingClient::ReconstructingClient(ida::FileId file, std::uint32_t m,
                                           std::uint32_t n,
                                           std::size_t block_size)
    : file_(file), m_(m), n_(n),
      engine_([&] {
        auto e = ida::Dispersal::Create(m, n, block_size);
        BDISK_CHECK(e.ok());
        return std::move(*e);
      }()),
      have_(n, false) {
  buffer_.reserve(m);
}

bool ReconstructingClient::Offer(const ida::Block& block,
                                 std::uint64_t epoch) {
  if (block.header.file_id != file_) return false;
  if (block.header.reconstruct_threshold != m_ ||
      block.header.total_blocks != n_ || block.header.block_index >= n_) {
    return false;  // Malformed or stale header; ignore.
  }
  if (CanReconstruct()) return true;
  if (have_[block.header.block_index]) return false;
  have_[block.header.block_index] = true;
  ++distinct_;
  buffer_.push_back(block);
  block_epochs_.push_back(epoch);
  return CanReconstruct();
}

std::uint32_t ReconstructingClient::EpochsSpanned() const {
  std::uint32_t distinct_epochs = 0;
  for (std::size_t i = 0; i < block_epochs_.size(); ++i) {
    bool seen = false;
    for (std::size_t j = 0; j < i; ++j) {
      if (block_epochs_[j] == block_epochs_[i]) {
        seen = true;
        break;
      }
    }
    if (!seen) ++distinct_epochs;
  }
  return distinct_epochs;
}

Result<std::vector<std::uint8_t>> ReconstructingClient::Reconstruct() const {
  if (!CanReconstruct()) {
    return Status::DataLoss("ReconstructingClient: only " +
                            std::to_string(distinct_) + " of " +
                            std::to_string(m_) + " blocks collected");
  }
  return engine_.Reconstruct(buffer_);
}

void ReconstructingClient::Clear() {
  have_.assign(n_, false);
  distinct_ = 0;
  buffer_.clear();
  block_epochs_.clear();
}

Result<SessionResult> RunRetrievalSession(const BroadcastServer& server,
                                          FaultModel* faults,
                                          broadcast::FileIndex file,
                                          std::uint64_t start_slot,
                                          std::uint64_t horizon) {
  if (file >= server.program().file_count()) {
    return Status::InvalidArgument("RunRetrievalSession: unknown file");
  }
  const broadcast::ProgramFile& pf = server.program().files()[file];
  ReconstructingClient client(static_cast<ida::FileId>(file), pf.m, pf.n,
                              server.block_size());
  faults->Reset();
  SessionResult result;
  for (std::uint64_t t = 0; t < horizon; ++t) {
    const bool lost = faults->Corrupts(t);
    if (t < start_slot) continue;  // Channel state still advances.
    const auto block = server.TransmissionAt(t);
    if (!block.has_value() || lost) continue;
    if (client.Offer(*block, server.schedule().EpochIndexAt(t))) {
      result.completed = true;
      result.completion_slot = t;
      result.latency = t - start_slot + 1;
      break;
    }
  }
  result.epochs_spanned = client.EpochsSpanned();
  if (result.completed) {
    BDISK_ASSIGN_OR_RETURN(result.data, client.Reconstruct());
  }
  return result;
}

}  // namespace bdisk::sim
