#include "sim/epoch.h"

#include <algorithm>

#include "common/check.h"

namespace bdisk::sim {

namespace {

Status CheckGeometry(const broadcast::BroadcastProgram& a,
                     const broadcast::BroadcastProgram& b,
                     std::size_t epoch_index) {
  if (a.file_count() != b.file_count()) {
    return Status::InvalidArgument(
        "EpochSchedule: epoch " + std::to_string(epoch_index) + " has " +
        std::to_string(b.file_count()) + " files, expected " +
        std::to_string(a.file_count()));
  }
  for (std::size_t f = 0; f < a.file_count(); ++f) {
    const broadcast::ProgramFile& fa = a.files()[f];
    const broadcast::ProgramFile& fb = b.files()[f];
    if (fa.name != fb.name || fa.m != fb.m || fa.n != fb.n) {
      return Status::InvalidArgument(
          "EpochSchedule: epoch " + std::to_string(epoch_index) +
          " changes the geometry of file " + std::to_string(f) + " ('" +
          fa.name + "' m=" + std::to_string(fa.m) + " n=" +
          std::to_string(fa.n) + " vs '" + fb.name + "' m=" +
          std::to_string(fb.m) + " n=" + std::to_string(fb.n) +
          "); hot swaps may change the schedule, never the code geometry");
    }
  }
  return Status::OK();
}

}  // namespace

Result<EpochSchedule> EpochSchedule::Create(std::vector<ProgramEpoch> epochs) {
  if (epochs.empty()) {
    return Status::InvalidArgument("EpochSchedule: no epochs");
  }
  if (epochs.front().start_slot != 0) {
    return Status::InvalidArgument(
        "EpochSchedule: the first epoch must start at slot 0, got " +
        std::to_string(epochs.front().start_slot));
  }
  for (std::size_t e = 0; e < epochs.size(); ++e) {
    if (epochs[e].program.period() == 0) {
      return Status::InvalidArgument("EpochSchedule: epoch " +
                                     std::to_string(e) +
                                     " holds an empty program");
    }
    if (e == 0) continue;
    const std::uint64_t prev_start = epochs[e - 1].start_slot;
    const std::uint64_t start = epochs[e].start_slot;
    if (start <= prev_start) {
      return Status::InvalidArgument(
          "EpochSchedule: epoch starts must strictly ascend (epoch " +
          std::to_string(e) + " at slot " + std::to_string(start) + ")");
    }
    const std::uint64_t period = epochs[e - 1].program.period();
    if ((start - prev_start) % period != 0) {
      return Status::InvalidArgument(
          "EpochSchedule: epoch " + std::to_string(e) + " starts at slot " +
          std::to_string(start) + ", which is not a period boundary of the " +
          "outgoing program (start " + std::to_string(prev_start) +
          ", period " + std::to_string(period) + ")");
    }
    BDISK_RETURN_NOT_OK(
        CheckGeometry(epochs.front().program, epochs[e].program, e));
  }
  return EpochSchedule(std::move(epochs));
}

EpochSchedule EpochSchedule::Single(broadcast::BroadcastProgram program) {
  std::vector<ProgramEpoch> epochs;
  epochs.push_back(ProgramEpoch{0, std::move(program)});
  auto schedule = Create(std::move(epochs));
  BDISK_CHECK(schedule.ok());
  return std::move(*schedule);
}

std::size_t EpochSchedule::EpochIndexAt(std::uint64_t t) const {
  // Last epoch whose start_slot <= t.
  const auto it = std::upper_bound(
      epochs_.begin(), epochs_.end(), t,
      [](std::uint64_t slot, const ProgramEpoch& e) {
        return slot < e.start_slot;
      });
  BDISK_DCHECK(it != epochs_.begin());
  return static_cast<std::size_t>(it - epochs_.begin()) - 1;
}

std::optional<broadcast::TransmissionRef> EpochSchedule::TransmissionAt(
    std::uint64_t t) const {
  const ProgramEpoch& epoch = epochs_[EpochIndexAt(t)];
  return epoch.program.TransmissionAt(t - epoch.start_slot);
}

std::uint64_t EpochSchedule::MaxDataCycleLength() const {
  std::uint64_t max_cycle = 0;
  for (const ProgramEpoch& e : epochs_) {
    max_cycle = std::max(max_cycle, e.program.DataCycleLength());
  }
  return max_cycle;
}

}  // namespace bdisk::sim
