/// \file server.h
/// \brief Byte-level data plane: a broadcast server that actually disperses
/// file contents with IDA and emits self-identifying coded blocks per slot.
///
/// The index-level Simulator is sufficient for latency experiments; this
/// server (with client.h's ReconstructingClient) closes the loop end to end
/// — real GF(2^8) dispersal, real block payloads, real reconstruction —
/// and is exercised by the integration tests and examples.

#ifndef BDISK_SIM_SERVER_H_
#define BDISK_SIM_SERVER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "bdisk/program.h"
#include "common/status.h"
#include "ida/aida.h"
#include "sim/epoch.h"
#include "store/block_store.h"

namespace bdisk::sim {

/// \brief Broadcast server executing a program — or an epoch schedule of
/// hot-swapping programs — over real file contents.
///
/// Files are dispersed exactly once: the epoch geometry contract
/// (sim/epoch.h) fixes (m, n, block size, contents) across epochs, so the
/// coded-block store is epoch-invariant and a swap changes only the
/// slot-to-block mapping. That is what makes the transition atomic for
/// clients: the block a client already holds is equally valid after the
/// swap.
class BroadcastServer {
 public:
  /// \param program   the broadcast program (copied).
  /// \param contents  one byte vector per program file; contents[f] must be
  ///                  exactly files()[f].m * block_size bytes (use
  ///                  ida::PadToFileSize).
  /// \param block_size payload bytes per block.
  static Result<BroadcastServer> Create(
      broadcast::BroadcastProgram program,
      const std::vector<std::vector<std::uint8_t>>& contents,
      std::size_t block_size);

  /// Epoch-aware variant: executes `schedule` (copied), hot-swapping
  /// programs at the schedule's epoch boundaries.
  static Result<BroadcastServer> Create(
      EpochSchedule schedule,
      const std::vector<std::vector<std::uint8_t>>& contents,
      std::size_t block_size);

  /// Disk-backed variant: the dispersed blocks are committed to `store`
  /// (one staging transaction, one commit) instead of held in memory, and
  /// transmissions are served through the store's checksum-verified read
  /// path. `store` is not owned and must outlive the server. Use
  /// FetchTransmission — the infallible TransmissionAt is reserved for
  /// in-memory servers.
  static Result<BroadcastServer> CreateDiskBacked(
      EpochSchedule schedule,
      const std::vector<std::vector<std::uint8_t>>& contents,
      std::size_t block_size, store::BlockStore* store);

  /// The coded block transmitted in slot t (nullopt for idle slots).
  /// In-memory servers only (CHECKs on disk-backed ones, whose reads can
  /// fail and must not be collapsed).
  std::optional<ida::Block> TransmissionAt(std::uint64_t t) const;

  /// Fallible variant serving both modes; disk-backed reads surface
  /// device and checksum failures as typed statuses.
  Result<std::optional<ida::Block>> FetchTransmission(std::uint64_t t) const;

  bool disk_backed() const { return store_ != nullptr; }

  /// The program of the first epoch (the file table is identical across
  /// epochs; single-program servers have exactly one epoch).
  const broadcast::BroadcastProgram& program() const {
    return schedule_.epochs().front().program;
  }

  /// The full epoch timeline this server executes.
  const EpochSchedule& schedule() const { return schedule_; }

  std::size_t block_size() const { return block_size_; }

  /// The dispersal engine for file f (clients use the same geometry).
  const ida::Dispersal& DispersalFor(broadcast::FileIndex f) const {
    return engines_[f];
  }

 private:
  BroadcastServer(EpochSchedule schedule, std::size_t block_size)
      : schedule_(std::move(schedule)), block_size_(block_size) {}

  EpochSchedule schedule_;
  std::size_t block_size_;
  std::vector<ida::Dispersal> engines_;
  // coded_[f][k] = k-th dispersed block of file f (k < files()[f].n).
  // Epoch-invariant: dispersal depends only on geometry and contents.
  // Empty for disk-backed servers, whose blocks live in *store_.
  std::vector<std::vector<ida::Block>> coded_;
  store::BlockStore* store_ = nullptr;
};

}  // namespace bdisk::sim

#endif  // BDISK_SIM_SERVER_H_
