/// \file server.h
/// \brief Byte-level data plane: a broadcast server that actually disperses
/// file contents with IDA and emits self-identifying coded blocks per slot.
///
/// The index-level Simulator is sufficient for latency experiments; this
/// server (with client.h's ReconstructingClient) closes the loop end to end
/// — real GF(2^8) dispersal, real block payloads, real reconstruction —
/// and is exercised by the integration tests and examples.

#ifndef BDISK_SIM_SERVER_H_
#define BDISK_SIM_SERVER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "bdisk/program.h"
#include "common/status.h"
#include "ida/aida.h"

namespace bdisk::sim {

/// \brief Broadcast server executing a program over real file contents.
class BroadcastServer {
 public:
  /// \param program   the broadcast program (copied).
  /// \param contents  one byte vector per program file; contents[f] must be
  ///                  exactly files()[f].m * block_size bytes (use
  ///                  ida::PadToFileSize).
  /// \param block_size payload bytes per block.
  static Result<BroadcastServer> Create(
      broadcast::BroadcastProgram program,
      const std::vector<std::vector<std::uint8_t>>& contents,
      std::size_t block_size);

  /// The coded block transmitted in slot t (nullopt for idle slots).
  std::optional<ida::Block> TransmissionAt(std::uint64_t t) const;

  const broadcast::BroadcastProgram& program() const { return program_; }
  std::size_t block_size() const { return block_size_; }

  /// The dispersal engine for file f (clients use the same geometry).
  const ida::Dispersal& DispersalFor(broadcast::FileIndex f) const {
    return engines_[f];
  }

 private:
  BroadcastServer(broadcast::BroadcastProgram program, std::size_t block_size)
      : program_(std::move(program)), block_size_(block_size) {}

  broadcast::BroadcastProgram program_;
  std::size_t block_size_;
  std::vector<ida::Dispersal> engines_;
  // coded_[f][k] = k-th dispersed block of file f (k < files()[f].n).
  std::vector<std::vector<ida::Block>> coded_;
};

}  // namespace bdisk::sim

#endif  // BDISK_SIM_SERVER_H_
