/// \file client.h
/// \brief Byte-level client: collects self-identifying coded blocks off the
/// broadcast channel and reconstructs the file with IDA.
///
/// Mirrors the paper's client model: no uplink, bounded buffer (it keeps at
/// most m blocks — IDA needs no more), blocks identified purely by their
/// headers ("this is block 4 out of 10 of object Z").

#ifndef BDISK_SIM_CLIENT_H_
#define BDISK_SIM_CLIENT_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/status.h"
#include "faults/channel_model.h"
#include "ida/block.h"
#include "ida/dispersal.h"
#include "sim/fault_model.h"
#include "sim/server.h"

namespace bdisk::sim {

/// \brief Why an offered block was (or was not) admitted into the
/// collection buffer. Every rejection is explicit and counted — a client on
/// a faulty channel must never silently treat an unusable block as
/// progress.
enum class OfferOutcome : std::uint8_t {
  /// Admitted; more blocks are still needed.
  kAccepted,
  /// Admitted, and the client now holds m distinct blocks.
  kCompleted,
  /// Ignored: the client already holds m distinct blocks.
  kAlreadyComplete,
  /// Ignored: the block belongs to a different file.
  kWrongFile,
  /// Rejected: header geometry does not match (wrong m/n, index >= n).
  kMalformedHeader,
  /// Rejected: a block with this index is already buffered (duplicates
  /// carry no new information under IDA).
  kDuplicate,
  /// Rejected: the block's version predates the version being collected —
  /// blocks of different update generations must never be combined.
  kStaleVersion,
  /// Rejected: the block is stamped and its checksum does not match, or
  /// checksums are required and it is unstamped — the payload (or header)
  /// was corrupted in transit.
  kChecksumMismatch,
};

/// True for the two outcomes that leave the client reconstructable.
inline bool OfferSatisfied(OfferOutcome outcome) {
  return outcome == OfferOutcome::kCompleted ||
         outcome == OfferOutcome::kAlreadyComplete;
}

/// \brief Incremental block collector + reconstructor for one file.
class ReconstructingClient {
 public:
  /// \param file        the file (program index / ida::FileId) to retrieve.
  /// \param m           reconstruction threshold.
  /// \param n           total dispersed blocks (for header validation).
  /// \param block_size  payload bytes per block.
  ReconstructingClient(ida::FileId file, std::uint32_t m, std::uint32_t n,
                       std::size_t block_size);

  /// Requires every admitted block to carry a valid checksum (the
  /// broadcast server stamps all transmissions). Default off so
  /// hand-built, unstamped blocks remain offerable; stamped-but-mismatched
  /// blocks are rejected in either mode.
  void set_require_checksums(bool require) { require_checksums_ = require; }

  /// Offers a received block and reports exactly what happened to it.
  ///
  /// `epoch` keys the block by the program epoch it was heard under
  /// (sim/epoch.h). Because hot swaps preserve dispersal geometry and
  /// contents, blocks from different epochs are mutually reconstructing —
  /// a stale-*epoch* block is deliberately NOT an error; the client keeps
  /// collecting across a swap and Reconstruct() is bit-identical to a
  /// single-epoch retrieval. Stale-*version* blocks (an older update
  /// generation than the one being collected) are rejected, and a *newer*
  /// version discards the stale partial collection and restarts, exactly
  /// like the versioned server's update semantics.
  OfferOutcome OfferEx(const ida::Block& block, std::uint64_t epoch = 0);

  /// Compatibility wrapper: returns true iff the client can reconstruct
  /// after the offer (OfferSatisfied(OfferEx(...))).
  bool Offer(const ida::Block& block, std::uint64_t epoch = 0) {
    return OfferSatisfied(OfferEx(block, epoch));
  }

  /// True iff m distinct blocks have been collected.
  bool CanReconstruct() const { return distinct_ >= m_; }

  /// Number of distinct blocks collected so far.
  std::uint32_t distinct_blocks() const { return distinct_; }

  /// Number of distinct program epochs among the collected blocks.
  std::uint32_t EpochsSpanned() const;

  /// Reconstructs the file. Fails with DataLoss before CanReconstruct().
  Result<std::vector<std::uint8_t>> Reconstruct() const;

  /// Drops all collected blocks (for reuse; rejection counters persist).
  void Clear();

  /// Duplicate-index blocks rejected so far.
  std::uint64_t duplicates_rejected() const { return duplicates_rejected_; }
  /// Stale-version blocks rejected so far.
  std::uint64_t stale_rejected() const { return stale_rejected_; }
  /// Checksum-mismatch blocks rejected so far.
  std::uint64_t checksum_rejected() const { return checksum_rejected_; }
  /// Partial collections discarded because a newer version appeared.
  std::uint32_t restarts() const { return restarts_; }

 private:
  ida::FileId file_;
  std::uint32_t m_;
  std::uint32_t n_;
  ida::Dispersal engine_;
  std::vector<bool> have_;
  std::uint32_t distinct_ = 0;
  std::vector<ida::Block> buffer_;
  // Epoch under which each buffered block was collected (parallel to
  // buffer_).
  std::vector<std::uint64_t> block_epochs_;
  // Version pinned by the first admitted block (collection invariant:
  // every buffered block carries this version).
  std::optional<std::uint64_t> version_;
  bool require_checksums_ = false;
  std::uint64_t duplicates_rejected_ = 0;
  std::uint64_t stale_rejected_ = 0;
  std::uint64_t checksum_rejected_ = 0;
  std::uint32_t restarts_ = 0;
};

/// \brief Outcome of a byte-level retrieval session.
struct SessionResult {
  bool completed = false;
  std::uint64_t completion_slot = 0;
  std::uint64_t latency = 0;
  /// Distinct program epochs the collected blocks were heard under (1 for
  /// a single-program server; >= 2 when the retrieval spanned a hot swap).
  std::uint32_t epochs_spanned = 0;
  /// Transmissions of the requested file erased by the channel.
  std::uint32_t lost_observed = 0;
  /// Transmissions of the requested file corrupted by the channel and
  /// rejected by the client (checksum or header validation).
  std::uint32_t corrupt_detected = 0;
  /// Latency minus the lossless-channel latency of the same session
  /// (valid when completed).
  std::uint64_t stall_slots = 0;
  std::vector<std::uint8_t> data;
};

/// \brief Runs a full retrieval session: from `start_slot`, listen to
/// `server` through `faults` (replayed from slot 0 so realizations match
/// the index-level simulator) until the file is reconstructable or
/// `horizon` is reached, then reconstruct.
Result<SessionResult> RunRetrievalSession(const BroadcastServer& server,
                                          FaultModel* faults,
                                          broadcast::FileIndex file,
                                          std::uint64_t start_slot,
                                          std::uint64_t horizon);

/// \brief Channel-model variant: listens through `channel`'s deterministic
/// fault trace. Lost slots never reach the client; corrupted slots deliver
/// a damaged copy of the block, which the client must detect (the server
/// stamps checksums, and the session requires them) and discard. Because
/// the trace is random-access, no replay from slot 0 is needed — the
/// realization is identical no matter where (or on how many threads)
/// sessions start.
Result<SessionResult> RunRetrievalSession(const BroadcastServer& server,
                                          const faults::ChannelModel& channel,
                                          broadcast::FileIndex file,
                                          std::uint64_t start_slot,
                                          std::uint64_t horizon);

}  // namespace bdisk::sim

#endif  // BDISK_SIM_CLIENT_H_
