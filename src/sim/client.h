/// \file client.h
/// \brief Byte-level client: collects self-identifying coded blocks off the
/// broadcast channel and reconstructs the file with IDA.
///
/// Mirrors the paper's client model: no uplink, bounded buffer (it keeps at
/// most m blocks — IDA needs no more), blocks identified purely by their
/// headers ("this is block 4 out of 10 of object Z").

#ifndef BDISK_SIM_CLIENT_H_
#define BDISK_SIM_CLIENT_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "ida/block.h"
#include "ida/dispersal.h"
#include "sim/fault_model.h"
#include "sim/server.h"

namespace bdisk::sim {

/// \brief Incremental block collector + reconstructor for one file.
class ReconstructingClient {
 public:
  /// \param file        the file (program index / ida::FileId) to retrieve.
  /// \param m           reconstruction threshold.
  /// \param n           total dispersed blocks (for header validation).
  /// \param block_size  payload bytes per block.
  ReconstructingClient(ida::FileId file, std::uint32_t m, std::uint32_t n,
                       std::size_t block_size);

  /// Offers a received block (any file; non-matching blocks are ignored).
  /// Returns true iff the client now has enough blocks to reconstruct.
  ///
  /// `epoch` keys the block by the program epoch it was heard under
  /// (sim/epoch.h). Because hot swaps preserve dispersal geometry and
  /// contents, blocks from different epochs are mutually reconstructing —
  /// the client keeps collecting across a swap and Reconstruct() is
  /// bit-identical to a single-epoch retrieval. The per-epoch key exists so
  /// that a future content-mutating transition can Clear() stale partials
  /// (as the versioned server does for updates) and so sessions can report
  /// how many epochs they spanned.
  bool Offer(const ida::Block& block, std::uint64_t epoch = 0);

  /// True iff m distinct blocks have been collected.
  bool CanReconstruct() const { return distinct_ >= m_; }

  /// Number of distinct blocks collected so far.
  std::uint32_t distinct_blocks() const { return distinct_; }

  /// Number of distinct program epochs among the collected blocks.
  std::uint32_t EpochsSpanned() const;

  /// Reconstructs the file. Fails with DataLoss before CanReconstruct().
  Result<std::vector<std::uint8_t>> Reconstruct() const;

  /// Drops all collected blocks (for reuse).
  void Clear();

 private:
  ida::FileId file_;
  std::uint32_t m_;
  std::uint32_t n_;
  ida::Dispersal engine_;
  std::vector<bool> have_;
  std::uint32_t distinct_ = 0;
  std::vector<ida::Block> buffer_;
  // Epoch under which each buffered block was collected (parallel to
  // buffer_).
  std::vector<std::uint64_t> block_epochs_;
};

/// \brief Outcome of a byte-level retrieval session.
struct SessionResult {
  bool completed = false;
  std::uint64_t completion_slot = 0;
  std::uint64_t latency = 0;
  /// Distinct program epochs the collected blocks were heard under (1 for
  /// a single-program server; >= 2 when the retrieval spanned a hot swap).
  std::uint32_t epochs_spanned = 0;
  std::vector<std::uint8_t> data;
};

/// \brief Runs a full retrieval session: from `start_slot`, listen to
/// `server` through `faults` (replayed from slot 0 so realizations match
/// the index-level simulator) until the file is reconstructable or
/// `horizon` is reached, then reconstruct.
Result<SessionResult> RunRetrievalSession(const BroadcastServer& server,
                                          FaultModel* faults,
                                          broadcast::FileIndex file,
                                          std::uint64_t start_slot,
                                          std::uint64_t horizon);

}  // namespace bdisk::sim

#endif  // BDISK_SIM_CLIENT_H_
