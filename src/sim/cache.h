/// \file cache.h
/// \brief Client-side caching for broadcast disks (Acharya et al. [1] —
/// "client cache management", cited in the paper's Section 1).
///
/// A broadcast-disk client caches items to avoid waiting for them to "go
/// by" again. The classic result is that pure access-probability policies
/// (LRU and friends) are wrong for broadcast media: the right currency is
/// cost * benefit, i.e. access probability *relative to broadcast
/// frequency* — an item broadcast rarely is expensive to miss. PIX evicts
/// the cached item with the smallest p / x (access probability over
/// broadcast frequency).
///
/// The cache is item-granular (a client either holds a reconstructed file
/// or not), matching this library's retrieval model.

#ifndef BDISK_SIM_CACHE_H_
#define BDISK_SIM_CACHE_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "bdisk/program.h"
#include "common/status.h"

namespace bdisk::sim {

/// \brief Cache replacement policy.
enum class CachePolicy {
  /// Evict the least recently used item.
  kLru,
  /// Evict the item with the smallest access-probability / broadcast-
  /// frequency ratio (the broadcast-disk-aware policy).
  kPix,
};

/// \brief Fixed-capacity item cache with pluggable replacement policy.
class ClientCache {
 public:
  /// \param capacity  maximum number of cached items (0 = caching off).
  /// \param policy    replacement policy.
  ClientCache(std::size_t capacity, CachePolicy policy)
      : capacity_(capacity), policy_(policy) {}

  /// True iff `file` is cached; refreshes recency on a hit.
  bool Lookup(broadcast::FileIndex file);

  /// Inserts `file` after a miss-retrieval. `access_probability` and
  /// `broadcast_frequency` feed the PIX score (ignored under LRU).
  /// Evicts per policy when full. No-op if capacity is 0 or the item is
  /// already cached.
  void Insert(broadcast::FileIndex file, double access_probability,
              double broadcast_frequency);

  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }

  /// Cached file indices (unordered; for tests/diagnostics).
  std::vector<broadcast::FileIndex> Contents() const;

 private:
  struct Entry {
    double pix_score = 0.0;
    // Position in lru_ (most recent at front).
    std::list<broadcast::FileIndex>::iterator lru_it;
  };

  void EvictOne();

  std::size_t capacity_;
  CachePolicy policy_;
  std::unordered_map<broadcast::FileIndex, Entry> entries_;
  std::list<broadcast::FileIndex> lru_;
};

}  // namespace bdisk::sim

#endif  // BDISK_SIM_CACHE_H_
