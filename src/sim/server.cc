#include "sim/server.h"

#include "common/check.h"

namespace bdisk::sim {

Result<BroadcastServer> BroadcastServer::Create(
    broadcast::BroadcastProgram program,
    const std::vector<std::vector<std::uint8_t>>& contents,
    std::size_t block_size) {
  return Create(EpochSchedule::Single(std::move(program)), contents,
                block_size);
}

Result<BroadcastServer> BroadcastServer::Create(
    EpochSchedule schedule,
    const std::vector<std::vector<std::uint8_t>>& contents,
    std::size_t block_size) {
  if (contents.size() != schedule.file_count()) {
    return Status::InvalidArgument(
        "BroadcastServer: need contents for all " +
        std::to_string(schedule.file_count()) + " files, got " +
        std::to_string(contents.size()));
  }
  BroadcastServer server(std::move(schedule), block_size);
  for (broadcast::FileIndex f = 0; f < server.schedule_.file_count(); ++f) {
    const broadcast::ProgramFile& pf = server.schedule_.files()[f];
    BDISK_ASSIGN_OR_RETURN(ida::Dispersal engine,
                           ida::Dispersal::Create(pf.m, pf.n, block_size));
    auto blocks = engine.Disperse(static_cast<ida::FileId>(f), contents[f]);
    if (!blocks.ok()) {
      return blocks.status().WithContext("BroadcastServer: file '" + pf.name +
                                         "'");
    }
    // Stamp integrity checksums once, at store-build time: every
    // transmission is self-verifying, so clients on corrupting channels
    // can discard damaged blocks (sim/client.h) instead of reconstructing
    // wrong bytes.
    ida::StampChecksums(&*blocks);
    server.engines_.push_back(std::move(engine));
    server.coded_.push_back(std::move(*blocks));
  }
  return server;
}

Result<BroadcastServer> BroadcastServer::CreateDiskBacked(
    EpochSchedule schedule,
    const std::vector<std::vector<std::uint8_t>>& contents,
    std::size_t block_size, store::BlockStore* store) {
  BDISK_CHECK(store != nullptr);
  if (contents.size() != schedule.file_count()) {
    return Status::InvalidArgument(
        "BroadcastServer: need contents for all " +
        std::to_string(schedule.file_count()) + " files, got " +
        std::to_string(contents.size()));
  }
  BroadcastServer server(std::move(schedule), block_size);
  server.store_ = store;
  for (broadcast::FileIndex f = 0; f < server.schedule_.file_count(); ++f) {
    const broadcast::ProgramFile& pf = server.schedule_.files()[f];
    BDISK_ASSIGN_OR_RETURN(ida::Dispersal engine,
                           ida::Dispersal::Create(pf.m, pf.n, block_size));
    auto blocks = engine.Disperse(static_cast<ida::FileId>(f), contents[f]);
    if (!blocks.ok()) {
      return blocks.status().WithContext("BroadcastServer: file '" + pf.name +
                                         "'");
    }
    ida::StampChecksums(&*blocks);
    BDISK_RETURN_NOT_OK(store->StageFile(*blocks).WithContext(
        "BroadcastServer: file '" + pf.name + "'"));
    server.engines_.push_back(std::move(engine));
    // coded_ stays empty: the store is the only copy of the blocks.
  }
  // One commit for the whole program: the epoch hot-swap contract's
  // durable twin — the catalog flips from "no files" to "all files"
  // atomically.
  BDISK_RETURN_NOT_OK(store->Commit().WithContext("BroadcastServer"));
  return server;
}

std::optional<ida::Block> BroadcastServer::TransmissionAt(
    std::uint64_t t) const {
  BDISK_CHECK(store_ == nullptr);  // Disk-backed: use FetchTransmission.
  const auto tx = schedule_.TransmissionAt(t);
  if (!tx.has_value()) return std::nullopt;
  return coded_[tx->file][tx->block_index];
}

Result<std::optional<ida::Block>> BroadcastServer::FetchTransmission(
    std::uint64_t t) const {
  const auto tx = schedule_.TransmissionAt(t);
  if (!tx.has_value()) return std::optional<ida::Block>();
  if (store_ == nullptr) {
    return std::optional<ida::Block>(coded_[tx->file][tx->block_index]);
  }
  BDISK_ASSIGN_OR_RETURN(
      ida::Block block,
      store_->ReadCodedBlock(static_cast<ida::FileId>(tx->file), /*version=*/0,
                             tx->block_index));
  return std::optional<ida::Block>(std::move(block));
}

}  // namespace bdisk::sim
