#include "sim/server.h"

namespace bdisk::sim {

Result<BroadcastServer> BroadcastServer::Create(
    broadcast::BroadcastProgram program,
    const std::vector<std::vector<std::uint8_t>>& contents,
    std::size_t block_size) {
  return Create(EpochSchedule::Single(std::move(program)), contents,
                block_size);
}

Result<BroadcastServer> BroadcastServer::Create(
    EpochSchedule schedule,
    const std::vector<std::vector<std::uint8_t>>& contents,
    std::size_t block_size) {
  if (contents.size() != schedule.file_count()) {
    return Status::InvalidArgument(
        "BroadcastServer: need contents for all " +
        std::to_string(schedule.file_count()) + " files, got " +
        std::to_string(contents.size()));
  }
  BroadcastServer server(std::move(schedule), block_size);
  for (broadcast::FileIndex f = 0; f < server.schedule_.file_count(); ++f) {
    const broadcast::ProgramFile& pf = server.schedule_.files()[f];
    BDISK_ASSIGN_OR_RETURN(ida::Dispersal engine,
                           ida::Dispersal::Create(pf.m, pf.n, block_size));
    auto blocks = engine.Disperse(static_cast<ida::FileId>(f), contents[f]);
    if (!blocks.ok()) {
      return blocks.status().WithContext("BroadcastServer: file '" + pf.name +
                                         "'");
    }
    // Stamp integrity checksums once, at store-build time: every
    // transmission is self-verifying, so clients on corrupting channels
    // can discard damaged blocks (sim/client.h) instead of reconstructing
    // wrong bytes.
    for (ida::Block& b : *blocks) ida::StampChecksum(&b);
    server.engines_.push_back(std::move(engine));
    server.coded_.push_back(std::move(*blocks));
  }
  return server;
}

std::optional<ida::Block> BroadcastServer::TransmissionAt(
    std::uint64_t t) const {
  const auto tx = schedule_.TransmissionAt(t);
  if (!tx.has_value()) return std::nullopt;
  return coded_[tx->file][tx->block_index];
}

}  // namespace bdisk::sim
