/// \file epoch.h
/// \brief Epoch schedules: a timeline of broadcast programs with hot-swap
/// transitions at period boundaries.
///
/// A production broadcast server re-optimizes its program as demand drifts
/// (src/adaptive/); the *epoch schedule* is the resulting timeline: epoch e
/// runs program P_e from its start slot until the next epoch begins. The
/// schedule enforces the hot-swap contract that makes transitions safe for
/// in-flight IDA retrievals:
///
/// * **Geometry invariance** — every epoch's program carries the same files
///   in the same index order with identical (name, m_i, n_i). Dispersed
///   blocks depend only on (m_i, n_i, block size, contents), so block k of
///   file f is the *same byte string* in every epoch: a client may combine
///   blocks collected under different epochs and reconstruction is
///   bit-identical to a single-epoch retrieval. Only the transmission
///   *schedule* changes across a swap, never the code.
/// * **Boundary alignment** — each epoch after the first starts at a slot
///   that is a whole number of the outgoing program's periods after that
///   epoch's start (the outgoing program completes a full period, then the
///   channel atomically switches).
///
/// Within an epoch, block rotation restarts at the epoch's start slot: the
/// k-th transmission of file f *within the epoch* carries block k mod n_f.
/// Across a boundary a client may therefore see a block index repeat sooner
/// than the data-cycle rotation would allow — that can only delay
/// completion, never corrupt it (blocks are self-identifying and
/// epoch-invariant).

#ifndef BDISK_SIM_EPOCH_H_
#define BDISK_SIM_EPOCH_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "bdisk/program.h"
#include "common/status.h"

namespace bdisk::sim {

/// \brief One epoch: a program and the absolute slot at which it takes over.
struct ProgramEpoch {
  /// First absolute slot governed by this epoch's program.
  std::uint64_t start_slot = 0;
  broadcast::BroadcastProgram program;
};

/// \brief A validated timeline of programs. The last epoch extends forever.
class EpochSchedule {
 public:
  /// Builds a schedule. Requirements: at least one epoch; the first starts
  /// at slot 0; starts strictly ascend; each start after the first is a
  /// whole number of the *previous* epoch's periods after that epoch's
  /// start; and all programs share identical file geometry (count, order,
  /// name, m, n — latency vectors may differ).
  static Result<EpochSchedule> Create(std::vector<ProgramEpoch> epochs);

  /// Single-epoch schedule (cannot fail for a valid program).
  static EpochSchedule Single(broadcast::BroadcastProgram program);

  const std::vector<ProgramEpoch>& epochs() const { return epochs_; }
  std::size_t epoch_count() const { return epochs_.size(); }

  /// Index of the epoch governing absolute slot `t`.
  std::size_t EpochIndexAt(std::uint64_t t) const;

  /// File and rotated block index at absolute slot `t` (nullopt when idle).
  /// Rotation is epoch-local: the governing epoch's program is evaluated at
  /// slot `t - start_slot`.
  std::optional<broadcast::TransmissionRef> TransmissionAt(
      std::uint64_t t) const;

  /// The shared file table (identical across epochs; epoch 0's instance).
  const std::vector<broadcast::ProgramFile>& files() const {
    return epochs_.front().program.files();
  }
  std::size_t file_count() const { return files().size(); }

  /// Largest data cycle across epochs (horizon sizing).
  std::uint64_t MaxDataCycleLength() const;

 private:
  explicit EpochSchedule(std::vector<ProgramEpoch> epochs)
      : epochs_(std::move(epochs)) {}

  std::vector<ProgramEpoch> epochs_;
};

}  // namespace bdisk::sim

#endif  // BDISK_SIM_EPOCH_H_
