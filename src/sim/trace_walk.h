/// \file trace_walk.h
/// \brief The single span walker behind per-request causal tracing.
///
/// A retrieval is a pure function of (schedule, fault trace, request), so
/// its causal chain can be reconstructed *after* the outcome is known —
/// which is what makes anomaly-triggered tracing free on the hot path
/// (obs/trace.h). Both engines call this one walker; they differ only in
/// how the next transmission of the traced file is found (the slot engine
/// scans, the event engine jumps), and the walker consumes that through a
/// callback — so the emitted event chain, and therefore the rendered
/// trace, is byte-identical across engines by construction. The walker
/// cross-checks its replayed completion against the engine-computed
/// outcome, making any engine/walker drift a hard failure.

#ifndef BDISK_SIM_TRACE_WALK_H_
#define BDISK_SIM_TRACE_WALK_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "faults/channel_model.h"
#include "obs/trace.h"

namespace bdisk::sim {

struct RetrievalOutcome;

/// \brief Engine-agnostic inputs of BuildRetrievalSpan for one file.
struct TraceWalkContext {
  /// Next transmission of the traced file at slot >= the argument:
  /// (absolute slot, rotated block index), or nullopt when none remains
  /// before the horizon.
  std::function<std::optional<std::pair<std::uint64_t, std::uint32_t>>(
      std::uint64_t)> next_tx;
  /// The realized fault trace (one effect per slot; size == horizon).
  const std::vector<faults::FaultType>* faults = nullptr;
  /// Start slots of epochs 1, 2, ... (ascending); empty without hot swaps.
  std::vector<std::uint64_t> epoch_starts;
  /// The traced file's dispersal geometry.
  std::uint32_t m = 0;
  std::uint32_t n = 0;
  std::uint64_t horizon = 0;
};

/// \brief Replays one retrieval's causal chain and packages it as a span.
/// `outcome` is the engine-computed result; the walker checks that its
/// replay reaches the same completion slot. `trigger` must be nonzero.
obs::TraceSpan BuildRetrievalSpan(const TraceWalkContext& ctx,
                                  std::uint64_t request_id,
                                  std::uint32_t file,
                                  const std::string& file_name,
                                  std::uint64_t start_slot,
                                  std::uint64_t deadline_slots,
                                  const RetrievalOutcome& outcome,
                                  std::uint8_t trigger);

}  // namespace bdisk::sim

#endif  // BDISK_SIM_TRACE_WALK_H_
