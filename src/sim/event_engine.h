/// \file event_engine.h
/// \brief Discrete-event simulation core for million-client fleets.
///
/// The slot-by-slot simulator (sim/simulation.h) walks every slot of every
/// retrieval, paying O(latency in slots) per client even though a client
/// only *does* anything on the slots carrying its own file. The event
/// engine removes the dead time: each client is a compact state record
/// (~80 bytes), and the only events are "client c hears a transmission of
/// its file at slot s". Events live in a binary min-heap keyed by
/// (slot, client index) — the client tie-break makes the processing order
/// fully deterministic — and a client is re-armed after each event with
/// the *next* transmission of its file, found by O(log occurrences) jump
/// arithmetic over the program's occurrence lists (epoch hot-swaps
/// included). Cost per retrieval drops from O(slots spanned) to
/// O(transmissions of the file heard), which is what lets one box carry
/// 1M+ concurrent clients over a multi-hour trace.
///
/// **Determinism contract (extends docs/ARCHITECTURE.md).** The engine is
/// proven output-*identical* to the slot-by-slot engine, not merely
/// statistically equivalent: for the same (program/schedule, fault trace,
/// client list), `MetricsToJson` of the evented run is byte-identical to
/// the slot engine's, serial or sharded, at any thread count
/// (tests/engine_equivalence_test.cc). The ingredients:
///
///  * clients are sharded by global index with the same ShardOf split as
///    the slot engine, one event heap per shard — no cross-shard state;
///  * every per-client quantity (completion slot, errors, stall baseline)
///    is a pure function of the shared fault trace and the schedule, so
///    heap processing order cannot change it;
///  * after the event loop drains, outcomes are folded into the metrics
///    in ascending client order — the exact accumulation order of the
///    slot engine — and shards merge with the exact RunningStats merge.
///
/// Steady-state event processing performs no heap allocation: the event
/// heap and all client state (including distinct-block spill bitmaps for
/// files with n > 64) are preallocated in Prepare()
/// (tests/event_engine_test.cc counts allocations to enforce this).

#ifndef BDISK_SIM_EVENT_ENGINE_H_
#define BDISK_SIM_EVENT_ENGINE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "bdisk/program.h"
#include "faults/channel_model.h"
#include "sim/epoch.h"
#include "sim/metrics.h"

namespace bdisk::obs {
class Timeline;
class TraceSink;
}  // namespace bdisk::obs

namespace bdisk::runtime {
class ThreadPool;
}  // namespace bdisk::runtime

namespace bdisk::sim {

/// \brief One simulated client: which file it wants, when it tunes in,
/// and its latency budget (0 = no deadline). Generated on demand by a
/// pure function of the global client index, so fleets never need a
/// materialized request list.
struct EventClient {
  broadcast::FileIndex file = 0;
  std::uint64_t start_slot = 0;
  std::uint64_t deadline_slots = 0;
};

/// \brief Binary min-heap of pending client events, keyed by slot with
/// ties broken by client index (deterministic processing order). Push is
/// allocation-free once Reserve()d.
class EventHeap {
 public:
  struct Event {
    /// Absolute slot of the transmission this client hears next.
    std::uint64_t slot = 0;
    /// Shard-local client index (the tie-break key).
    std::uint32_t client = 0;
    /// Rotated block index carried by that transmission.
    std::uint32_t block = 0;
  };

  /// Strict (slot, client) ordering; block is payload, never a key.
  static bool Before(const Event& a, const Event& b) {
    return a.slot != b.slot ? a.slot < b.slot : a.client < b.client;
  }

  void Reserve(std::size_t capacity) { heap_.reserve(capacity); }
  bool Empty() const { return heap_.empty(); }
  std::size_t Size() const { return heap_.size(); }
  const Event& Top() const { return heap_.front(); }

  void Push(const Event& e);
  Event Pop();

 private:
  std::vector<Event> heap_;
};

/// \brief Compact per-client simulation state (~80 bytes). Files with
/// n <= 64 track their distinct-block sets in the two inline bitmap words;
/// larger n spills into the shard's preallocated bitmap arena.
struct ClientState {
  static constexpr std::uint32_t kNoSpill = 0xFFFFFFFFu;
  static constexpr std::uint8_t kCompleted = 1;     // Collected m blocks.
  static constexpr std::uint8_t kBaselineDone = 2;  // Lossless walk done.
  static constexpr std::uint8_t kDone = 4;          // No more events.

  std::uint64_t start_slot = 0;
  /// Distinct-block bitmap of the actual (fault-respecting) walk.
  std::uint64_t have_bits = 0;
  /// Distinct-block bitmap of the lossless-baseline walk (stall metric).
  std::uint64_t base_bits = 0;
  std::uint64_t completion_slot = 0;
  std::uint64_t baseline_slot = 0;
  std::uint64_t deadline_slots = 0;
  broadcast::FileIndex file = 0;
  /// Word offset into the shard's spill arena, kNoSpill when inline.
  std::uint32_t spill_offset = kNoSpill;
  std::uint32_t errors_observed = 0;
  std::uint32_t corrupt_detected = 0;
  std::uint32_t distinct = 0;
  std::uint32_t base_distinct = 0;
  std::uint8_t flags = 0;
};

/// \brief Aggregate engine counters (benchmark/diagnostic output).
struct EventEngineStats {
  /// Transmission events processed across all shards.
  std::uint64_t events = 0;
  /// Clients simulated.
  std::uint64_t clients = 0;
};

/// \brief Discrete-event broadcast-disk engine over a program or epoch
/// schedule plus a realized fault trace (borrowed; one FaultType per slot,
/// trace length = horizon). Safe for concurrent const use.
class EventEngine {
 public:
  EventEngine(const broadcast::BroadcastProgram& program,
              const std::vector<faults::FaultType>& faults);
  EventEngine(const EpochSchedule& schedule,
              const std::vector<faults::FaultType>& faults);

  /// The shared file table (epoch 0's in schedule mode).
  const std::vector<broadcast::ProgramFile>& files() const {
    return epochs_.front().program->files();
  }

  std::uint64_t horizon() const { return faults_->size(); }

  /// Fault effect at `slot` (< horizon).
  faults::FaultType FaultAt(std::uint64_t slot) const {
    return (*faults_)[slot];
  }

  /// Period of the program governing slot `t` (periods_to_recovery).
  std::uint64_t PeriodAt(std::uint64_t t) const;

  struct NextTx {
    std::uint64_t slot = 0;
    std::uint32_t block = 0;
  };

  /// First transmission of `file` at slot >= `from` (epoch-aware, with the
  /// epoch-local block rotation of sim/epoch.h), or nullopt when none
  /// remains before the horizon. O(log occurrences + epochs crossed).
  std::optional<NextTx> NextTransmissionOf(broadcast::FileIndex file,
                                           std::uint64_t from) const;

  /// Simulates clients [0, count), where client g is `client_at(g)` — a
  /// pure, thread-safe function of g. Clients are sharded by global index
  /// across `pool` (null = serial) with one event heap per shard; the
  /// result is bit-identical to the slot-by-slot engine and to any other
  /// thread count. Every client must name a known file and start before
  /// the horizon (checked). Fills `stats` when non-null. A non-null
  /// `timeline` (geometry covering this horizon) additionally receives
  /// every outcome bucketed by completion slot; per-shard timelines merge
  /// exactly in shard order, so the snapshot stream inherits the same
  /// bit-identical-at-any-thread-count contract as the metrics. A non-null
  /// `trace` (obs/trace.h) captures causal spans of the requests its
  /// options trigger on via the shared walker (sim/trace_walk.h); shard
  /// sinks merge in shard order, so the rendered trace is byte-identical
  /// to the slot engine's at any thread count.
  SimulationMetrics Run(std::uint64_t count,
                        const std::function<EventClient(std::uint64_t)>&
                            client_at,
                        runtime::ThreadPool* pool = nullptr,
                        EventEngineStats* stats = nullptr,
                        obs::Timeline* timeline = nullptr,
                        obs::TraceSink* trace = nullptr) const;

 private:
  friend class EventShardRunner;

  struct EpochRef {
    std::uint64_t start = 0;
    std::uint64_t end = 0;  // Exclusive; UINT64_MAX for the last epoch.
    const broadcast::BroadcastProgram* program = nullptr;
  };

  std::size_t EpochIndexAt(std::uint64_t t) const;

  /// Captures the finished client's causal span into `sink` when its
  /// options trigger; no-op otherwise. Derives the outcome fields with
  /// the slot engine's exact semantics, then replays via the shared
  /// walker with NextTransmissionOf as the jump source.
  void RecordRetrievalTrace(obs::TraceSink* sink, std::uint64_t request_id,
                            const ClientState& st) const;

  std::vector<EpochRef> epochs_;
  const std::vector<faults::FaultType>* faults_;
};

/// \brief One shard's event loop: client states, spill arena, and event
/// heap for a contiguous range of global client indices. Exposed (rather
/// than hidden inside EventEngine::Run) so the unit tests can drive the
/// phases separately — in particular the allocation-count check around
/// Drain() and direct state inspection.
class EventShardRunner {
 public:
  explicit EventShardRunner(const EventEngine& engine) : engine_(&engine) {}

  /// Materializes states for clients [begin, end) of `client_at`, assigns
  /// spill bitmaps, and seeds each client's first event. Allocates; checks
  /// every client's validity (known file, start before horizon).
  void Prepare(std::uint64_t begin, std::uint64_t end,
               const std::function<EventClient(std::uint64_t)>& client_at);

  /// Processes events to exhaustion. Performs no heap allocation.
  void Drain();

  /// Folds the finished clients' outcomes into `local` in ascending client
  /// order — the slot engine's exact accumulation order. `local->per_file`
  /// must already be sized to the engine's file count. A non-null
  /// `timeline` receives each outcome bucketed by completion slot. A
  /// non-null `trace` captures triggered spans, with `global_begin` the
  /// global index of local client 0 (the sampling counter's domain).
  void Collect(SimulationMetrics* local,
               obs::Timeline* timeline = nullptr,
               std::uint64_t global_begin = 0,
               obs::TraceSink* trace = nullptr) const;

  std::size_t client_count() const { return states_.size(); }
  const ClientState& state(std::size_t local_index) const {
    return states_[local_index];
  }
  std::uint64_t events_processed() const { return events_; }

 private:
  /// Marks `block` in the actual / baseline distinct set; returns true iff
  /// it was already present.
  bool TestSetHave(ClientState* st, std::uint32_t block, std::uint32_t n);
  bool TestSetBase(ClientState* st, std::uint32_t block, std::uint32_t n);

  const EventEngine* engine_;
  std::vector<ClientState> states_;
  /// Spill bitmap arena for files with n > 64: per spilled client,
  /// ceil(n/64) words of `have` followed by ceil(n/64) words of `base`.
  std::vector<std::uint64_t> arena_;
  EventHeap heap_;
  std::uint64_t events_ = 0;
};

}  // namespace bdisk::sim

#endif  // BDISK_SIM_EVENT_ENGINE_H_
