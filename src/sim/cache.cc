#include "sim/cache.h"

#include <algorithm>

#include "common/check.h"

namespace bdisk::sim {

bool ClientCache::Lookup(broadcast::FileIndex file) {
  auto it = entries_.find(file);
  if (it == entries_.end()) return false;
  // Refresh recency.
  lru_.erase(it->second.lru_it);
  lru_.push_front(file);
  it->second.lru_it = lru_.begin();
  return true;
}

void ClientCache::Insert(broadcast::FileIndex file, double access_probability,
                         double broadcast_frequency) {
  if (capacity_ == 0) return;
  if (entries_.count(file) != 0) return;
  const double score = broadcast_frequency > 0.0
                           ? access_probability / broadcast_frequency
                           : access_probability;
  if (entries_.size() >= capacity_) {
    if (policy_ == CachePolicy::kPix) {
      // Admission control: a newcomer worth less than every cached item
      // must not displace one.
      double min_cached = 0.0;
      bool first = true;
      for (const auto& [cached, entry] : entries_) {
        if (first || entry.pix_score < min_cached) {
          min_cached = entry.pix_score;
          first = false;
        }
      }
      if (score < min_cached) return;
    }
    EvictOne();
  }
  lru_.push_front(file);
  Entry entry;
  entry.lru_it = lru_.begin();
  entry.pix_score = score;
  entries_.emplace(file, entry);
}

void ClientCache::EvictOne() {
  BDISK_CHECK(!entries_.empty());
  broadcast::FileIndex victim;
  if (policy_ == CachePolicy::kLru) {
    victim = lru_.back();
  } else {
    // PIX: smallest p/x; ties broken toward least recently used (scan the
    // LRU list back to front).
    double best = 0.0;
    bool first = true;
    victim = lru_.back();
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      const double score = entries_.at(*it).pix_score;
      if (first || score < best) {
        best = score;
        victim = *it;
        first = false;
      }
    }
  }
  auto it = entries_.find(victim);
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
}

std::vector<broadcast::FileIndex> ClientCache::Contents() const {
  std::vector<broadcast::FileIndex> out;
  out.reserve(entries_.size());
  for (const auto& [file, entry] : entries_) out.push_back(file);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace bdisk::sim
