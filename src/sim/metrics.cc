#include "sim/metrics.h"

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <sstream>

#include "common/check.h"

namespace bdisk::sim {

std::uint64_t SimulationMetrics::TotalAttempts() const {
  std::uint64_t total = 0;
  for (const FileMetrics& f : per_file) total += f.attempts();
  return total;
}

double SimulationMetrics::OverallMissRate() const {
  std::uint64_t attempts = 0;
  std::uint64_t misses = 0;
  for (const FileMetrics& f : per_file) {
    attempts += f.attempts();
    misses += f.missed_deadline + f.incomplete;
  }
  if (attempts == 0) return 0.0;
  return static_cast<double>(misses) / static_cast<double>(attempts);
}

double SimulationMetrics::OverallMeanLatency() const {
  RunningStats all;
  for (const FileMetrics& f : per_file) all.Merge(f.latency);
  return all.mean();
}

double SimulationMetrics::OverallMaxLatency() const {
  double worst = 0.0;
  for (const FileMetrics& f : per_file) {
    if (f.latency.count() > 0) worst = std::max(worst, f.latency.max());
  }
  return worst;
}

double SimulationMetrics::OverallMeanStall() const {
  RunningStats all;
  for (const FileMetrics& f : per_file) all.Merge(f.stall);
  return all.mean();
}

double SimulationMetrics::OverallUndecodableRate() const {
  std::uint64_t attempts = 0;
  std::uint64_t incomplete = 0;
  for (const FileMetrics& f : per_file) {
    attempts += f.attempts();
    incomplete += f.incomplete;
  }
  if (attempts == 0) return 0.0;
  return static_cast<double>(incomplete) / static_cast<double>(attempts);
}

std::string SimulationMetrics::ToString() const {
  std::ostringstream oss;
  oss << std::left << std::setw(20) << "file" << std::right << std::setw(10)
      << "attempts" << std::setw(12) << "mean_lat" << std::setw(10)
      << "max_lat" << std::setw(11) << "mean_stall" << std::setw(9)
      << "undecod" << std::setw(11) << "miss_rate" << "\n";
  for (const FileMetrics& f : per_file) {
    oss << std::left << std::setw(20) << f.file_name << std::right
        << std::setw(10) << f.attempts() << std::setw(12) << std::fixed
        << std::setprecision(2) << f.latency.mean() << std::setw(10)
        << std::setprecision(0)
        << (f.latency.count() > 0 ? f.latency.max() : 0.0) << std::setw(11)
        << std::setprecision(2) << f.stall.mean() << std::setw(9)
        << std::setprecision(4) << f.UndecodableRate() << std::setw(11)
        << std::setprecision(4) << f.MissRate() << "\n";
  }
  return oss.str();
}

namespace {

/// %.17g keeps doubles lossless, so serializations are string-identical
/// iff the metrics are bit-identical.
void AppendDouble(std::string* out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  *out += buf;
}

/// Minimal JSON string escaping: file names are free-form spec tokens, so
/// quotes, backslashes, and control bytes must not break the snapshot.
void AppendJsonString(std::string* out, const std::string& s) {
  *out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
  *out += '"';
}

void AppendStats(std::string* out, const char* key,
                 const RunningStats& stats) {
  *out += "\"";
  *out += key;
  *out += "\":{\"count\":" + std::to_string(stats.count()) + ",\"sum\":";
  AppendDouble(out, stats.sum());
  *out += ",\"mean\":";
  AppendDouble(out, stats.mean());
  // min/max are +-inf on an empty accumulator, which JSON cannot carry.
  *out += ",\"min\":";
  AppendDouble(out, stats.count() > 0 ? stats.min() : 0.0);
  *out += ",\"max\":";
  AppendDouble(out, stats.count() > 0 ? stats.max() : 0.0);
  *out += "}";
}

}  // namespace

std::string MetricsToJson(const SimulationMetrics& metrics) {
  std::string out = "{\n  \"files\": [\n";
  for (std::size_t i = 0; i < metrics.per_file.size(); ++i) {
    const FileMetrics& f = metrics.per_file[i];
    out += "    {\"name\":";
    AppendJsonString(&out, f.file_name);
    out += ",\"attempts\":" + std::to_string(f.attempts());
    out += ",\"completed\":" + std::to_string(f.completed);
    out += ",\"incomplete\":" + std::to_string(f.incomplete);
    out += ",\"missed_deadline\":" + std::to_string(f.missed_deadline);
    out += ",\"errors_observed\":" + std::to_string(f.errors_observed);
    out += ",\"corrupt_detected\":" + std::to_string(f.corrupt_detected);
    out += ",";
    AppendStats(&out, "latency", f.latency);
    out += ",";
    AppendStats(&out, "stall", f.stall);
    out += ",";
    AppendStats(&out, "periods_to_recovery", f.periods_to_recovery);
    out += i + 1 < metrics.per_file.size() ? "},\n" : "}\n";
  }
  out += "  ],\n  \"overall\": {";
  out += "\"attempts\":" + std::to_string(metrics.TotalAttempts());
  out += ",\"miss_rate\":";
  AppendDouble(&out, metrics.OverallMissRate());
  out += ",\"mean_latency\":";
  AppendDouble(&out, metrics.OverallMeanLatency());
  out += ",\"max_latency\":";
  AppendDouble(&out, metrics.OverallMaxLatency());
  out += ",\"mean_stall\":";
  AppendDouble(&out, metrics.OverallMeanStall());
  out += ",\"undecodable_rate\":";
  AppendDouble(&out, metrics.OverallUndecodableRate());
  out += "}\n}\n";
  return out;
}

void SimulationMetrics::Merge(const SimulationMetrics& other) {
  if (other.per_file.empty()) return;
  if (per_file.empty()) {
    per_file = other.per_file;
    return;
  }
  BDISK_CHECK(per_file.size() == other.per_file.size());
  for (std::size_t f = 0; f < per_file.size(); ++f) {
    per_file[f].Merge(other.per_file[f]);
  }
}

}  // namespace bdisk::sim
