#include "sim/metrics.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/check.h"

namespace bdisk::sim {

std::uint64_t SimulationMetrics::TotalAttempts() const {
  std::uint64_t total = 0;
  for (const FileMetrics& f : per_file) total += f.attempts();
  return total;
}

double SimulationMetrics::OverallMissRate() const {
  std::uint64_t attempts = 0;
  std::uint64_t misses = 0;
  for (const FileMetrics& f : per_file) {
    attempts += f.attempts();
    misses += f.missed_deadline + f.incomplete;
  }
  if (attempts == 0) return 0.0;
  return static_cast<double>(misses) / static_cast<double>(attempts);
}

double SimulationMetrics::OverallMeanLatency() const {
  RunningStats all;
  for (const FileMetrics& f : per_file) all.Merge(f.latency);
  return all.mean();
}

double SimulationMetrics::OverallMaxLatency() const {
  double worst = 0.0;
  for (const FileMetrics& f : per_file) {
    if (f.latency.count() > 0) worst = std::max(worst, f.latency.max());
  }
  return worst;
}

std::string SimulationMetrics::ToString() const {
  std::ostringstream oss;
  oss << std::left << std::setw(20) << "file" << std::right << std::setw(10)
      << "attempts" << std::setw(12) << "mean_lat" << std::setw(10)
      << "max_lat" << std::setw(11) << "miss_rate" << "\n";
  for (const FileMetrics& f : per_file) {
    oss << std::left << std::setw(20) << f.file_name << std::right
        << std::setw(10) << f.attempts() << std::setw(12) << std::fixed
        << std::setprecision(2) << f.latency.mean() << std::setw(10)
        << std::setprecision(0) << f.latency.max() << std::setw(11)
        << std::setprecision(4) << f.MissRate() << "\n";
  }
  return oss.str();
}

void SimulationMetrics::Merge(const SimulationMetrics& other) {
  if (other.per_file.empty()) return;
  if (per_file.empty()) {
    per_file = other.per_file;
    return;
  }
  BDISK_CHECK(per_file.size() == other.per_file.size());
  for (std::size_t f = 0; f < per_file.size(); ++f) {
    per_file[f].Merge(other.per_file[f]);
  }
}

}  // namespace bdisk::sim
