#include "sim/metrics.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/check.h"
#include "obs/json.h"

namespace bdisk::sim {

std::uint64_t SimulationMetrics::TotalAttempts() const {
  std::uint64_t total = 0;
  for (const FileMetrics& f : per_file) total += f.attempts();
  return total;
}

double SimulationMetrics::OverallMissRate() const {
  std::uint64_t attempts = 0;
  std::uint64_t misses = 0;
  for (const FileMetrics& f : per_file) {
    attempts += f.attempts();
    misses += f.missed_deadline + f.incomplete;
  }
  if (attempts == 0) return 0.0;
  return static_cast<double>(misses) / static_cast<double>(attempts);
}

double SimulationMetrics::OverallMeanLatency() const {
  RunningStats all;
  for (const FileMetrics& f : per_file) all.Merge(f.latency);
  return all.mean();
}

double SimulationMetrics::OverallMaxLatency() const {
  double worst = 0.0;
  for (const FileMetrics& f : per_file) {
    if (f.latency.count() > 0) worst = std::max(worst, f.latency.max());
  }
  return worst;
}

double SimulationMetrics::OverallMeanStall() const {
  RunningStats all;
  for (const FileMetrics& f : per_file) all.Merge(f.stall);
  return all.mean();
}

double SimulationMetrics::OverallUndecodableRate() const {
  std::uint64_t attempts = 0;
  std::uint64_t incomplete = 0;
  for (const FileMetrics& f : per_file) {
    attempts += f.attempts();
    incomplete += f.incomplete;
  }
  if (attempts == 0) return 0.0;
  return static_cast<double>(incomplete) / static_cast<double>(attempts);
}

std::string SimulationMetrics::ToString() const {
  std::ostringstream oss;
  oss << std::left << std::setw(20) << "file" << std::right << std::setw(10)
      << "attempts" << std::setw(12) << "mean_lat" << std::setw(10)
      << "max_lat" << std::setw(11) << "mean_stall" << std::setw(9)
      << "undecod" << std::setw(11) << "miss_rate" << "\n";
  for (const FileMetrics& f : per_file) {
    oss << std::left << std::setw(20) << f.file_name << std::right
        << std::setw(10) << f.attempts() << std::setw(12) << std::fixed
        << std::setprecision(2) << f.latency.mean() << std::setw(10)
        << std::setprecision(0)
        << (f.latency.count() > 0 ? f.latency.max() : 0.0) << std::setw(11)
        << std::setprecision(2) << f.stall.mean() << std::setw(9)
        << std::setprecision(4) << f.UndecodableRate() << std::setw(11)
        << std::setprecision(4) << f.MissRate() << "\n";
  }
  return oss.str();
}

namespace {

/// One stats sub-object: {"count":N,"sum":S,"mean":M,"min":m,"max":X}.
/// min/max are +-inf on an empty accumulator, which JSON cannot carry.
void WriteStats(obs::JsonWriter* w, const char* key,
                const RunningStats& stats) {
  w->Key(key);
  w->BeginObject();
  w->Key("count");
  w->Uint(stats.count());
  w->Key("sum");
  w->Double(stats.sum());
  w->Key("mean");
  w->Double(stats.mean());
  w->Key("min");
  w->Double(stats.count() > 0 ? stats.min() : 0.0);
  w->Key("max");
  w->Double(stats.count() > 0 ? stats.max() : 0.0);
  w->EndObject();
}

}  // namespace

std::string MetricsToJson(const SimulationMetrics& metrics) {
  // Emitted through the canonical obs::JsonWriter; the layout (indented
  // files array, compact members) is pinned byte-for-byte by the committed
  // scenario goldens, which predate the writer.
  obs::JsonWriter w;
  w.BeginObject();
  w.Newline("  ");
  w.Key("files");
  w.Raw(" ");
  w.BeginArray();
  for (const FileMetrics& f : metrics.per_file) {
    w.Newline("    ");
    w.BeginObject();
    w.Key("name");
    w.String(f.file_name);
    w.Key("attempts");
    w.Uint(f.attempts());
    w.Key("completed");
    w.Uint(f.completed);
    w.Key("incomplete");
    w.Uint(f.incomplete);
    w.Key("missed_deadline");
    w.Uint(f.missed_deadline);
    w.Key("errors_observed");
    w.Uint(f.errors_observed);
    w.Key("corrupt_detected");
    w.Uint(f.corrupt_detected);
    WriteStats(&w, "latency", f.latency);
    WriteStats(&w, "stall", f.stall);
    WriteStats(&w, "periods_to_recovery", f.periods_to_recovery);
    w.EndObject();
  }
  w.Newline("  ");
  w.EndArray();
  w.Newline("  ");
  w.Key("overall");
  w.Raw(" ");
  w.BeginObject();
  w.Key("attempts");
  w.Uint(metrics.TotalAttempts());
  w.Key("miss_rate");
  w.Double(metrics.OverallMissRate());
  w.Key("mean_latency");
  w.Double(metrics.OverallMeanLatency());
  w.Key("max_latency");
  w.Double(metrics.OverallMaxLatency());
  w.Key("mean_stall");
  w.Double(metrics.OverallMeanStall());
  w.Key("undecodable_rate");
  w.Double(metrics.OverallUndecodableRate());
  w.EndObject();
  w.Newline("");
  w.EndObject();
  w.Raw("\n");
  return w.Release();
}

void SimulationMetrics::Merge(const SimulationMetrics& other) {
  if (other.per_file.empty()) return;
  if (per_file.empty()) {
    per_file = other.per_file;
    return;
  }
  BDISK_CHECK(per_file.size() == other.per_file.size());
  for (std::size_t f = 0; f < per_file.size(); ++f) {
    per_file[f].Merge(other.per_file[f]);
  }
}

}  // namespace bdisk::sim
