/// \file arrivals.h
/// \brief Pluggable client arrival processes for fleet-scale simulation.
///
/// An arrival process assigns every client of a fleet a start time on the
/// broadcast timeline. Like the channel models (faults/channel_model.h),
/// arrivals obey the **determinism contract**: `ArrivalTimeOf(i)` is a
/// *pure* function of (process parameters, seed, client index i), computed
/// from the counter-based RNG streams of runtime/rng_stream.h — never from
/// mutable sequential state. Consequently an arrival trace is
///
///   (a) exactly reproducible from its seed,
///   (b) random-access — client 10^6's arrival needs no walk over the
///       first million clients, and
///   (c) shard-count invariant — any partition of the fleet across
///       threads observes the identical trace, which is what keeps the
///       event engine's sharded metrics bit-identical to the serial path.
///
/// **Poisson construction.** A homogeneous Poisson process cannot be
/// random-access through its inter-arrival increments (arrival i is a sum
/// of i exponentials). We use the conditional-uniformity property instead:
/// given the number of arrivals N in a window, the arrival times of a
/// Poisson process are N i.i.d. uniforms on the window. For a fixed fleet
/// of N clients the process therefore draws client i's time i.i.d.
/// uniform — the binomial point process, which is exactly the rate-N/W
/// Poisson process conditioned on its count. The *sorted* trace has the
/// Poisson spacing statistics (exchangeable near-exponential gaps of mean
/// W/(N+1)), which is what tests/arrivals_test.cc checks.
///
/// The inhomogeneous processes (flash crowd, diurnal) use the same device
/// with a non-uniform per-client density: client i's time is an i.i.d.
/// draw from lambda(t) / Lambda(W) via inverse-CDF, so the empirical rate
/// integrates to the configured profile.
///
/// Processes are safe for concurrent const use.

#ifndef BDISK_SIM_ARRIVALS_H_
#define BDISK_SIM_ARRIVALS_H_

#include <cstdint>
#include <string>

namespace bdisk::sim {

/// \brief A deterministic, random-access assignment of arrival times to
/// client indices.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  /// Continuous arrival time of client `i`, in [0, window_slots). Pure:
  /// depends only on the process configuration and `i`.
  virtual double ArrivalTimeOf(std::uint64_t client) const = 0;

  /// Arrival time of client `i` quantized to a broadcast slot
  /// (floor of ArrivalTimeOf, so always < window_slots).
  std::uint64_t ArrivalSlotOf(std::uint64_t client) const {
    return static_cast<std::uint64_t>(ArrivalTimeOf(client));
  }

  /// Width of the arrival window in slots (arrivals land in [0, window)).
  virtual std::uint64_t window_slots() const = 0;

  /// Canonical human-readable description,
  /// e.g. "poisson:window=10000,seed=7".
  virtual std::string Describe() const = 0;
};

/// \brief Stationary (homogeneous Poisson) arrivals: each client's time is
/// i.i.d. uniform on [0, window); for a fleet of N clients this is the
/// rate-(N / window) Poisson process conditioned on its count.
class PoissonArrivals final : public ArrivalProcess {
 public:
  /// `window_slots` must be positive.
  PoissonArrivals(std::uint64_t window_slots, std::uint64_t seed);

  double ArrivalTimeOf(std::uint64_t client) const override;
  std::uint64_t window_slots() const override { return window_; }
  std::string Describe() const override;

 private:
  std::uint64_t window_;
  std::uint64_t seed_;
};

/// \brief Flash-crowd arrivals: a baseline uniform trickle plus a burst —
/// each client independently joins the burst with probability
/// `burst_fraction` and then lands uniformly inside the burst window
/// [burst_start, burst_start + burst_length); otherwise it lands uniformly
/// in [0, window).
class FlashCrowdArrivals final : public ArrivalProcess {
 public:
  struct Params {
    std::uint64_t window_slots = 0;
    std::uint64_t burst_start = 0;
    std::uint64_t burst_length = 0;
    /// Fraction of the fleet that belongs to the burst, in [0, 1].
    double burst_fraction = 0.5;
  };

  /// Requires a positive window, a non-empty burst window contained in
  /// [0, window), and burst_fraction in [0, 1].
  FlashCrowdArrivals(const Params& params, std::uint64_t seed);

  double ArrivalTimeOf(std::uint64_t client) const override;
  std::uint64_t window_slots() const override { return params_.window_slots; }
  std::string Describe() const override;

 private:
  Params params_;
  std::uint64_t seed_;
};

/// \brief Diurnal arrivals: sinusoidally modulated rate
///
///   lambda(t) proportional to 1 + amplitude * sin(2 pi t / P),
///   P = window / cycles,
///
/// sampled per client by inverting the cumulative rate
///
///   Lambda(t) = t + (amplitude * P / 2 pi) * (1 - cos(2 pi t / P)),
///
/// which integrates to exactly `window` over the window, so a fleet of N
/// clients realizes the full configured total N.
class DiurnalArrivals final : public ArrivalProcess {
 public:
  struct Params {
    std::uint64_t window_slots = 0;
    /// Number of full day/night cycles inside the window (>= 1).
    std::uint32_t cycles = 1;
    /// Peak-to-mean rate modulation, in [0, 1).
    double amplitude = 0.8;
  };

  DiurnalArrivals(const Params& params, std::uint64_t seed);

  double ArrivalTimeOf(std::uint64_t client) const override;
  std::uint64_t window_slots() const override { return params_.window_slots; }
  std::string Describe() const override;

  /// Cumulative rate Lambda(t) in [0, window] for t in [0, window] — the
  /// expected arrival mass of [0, t) is fleet_size * Lambda(t) / window
  /// (exposed for the property tests).
  double CumulativeRate(double t) const;

 private:
  Params params_;
  std::uint64_t seed_;
};

}  // namespace bdisk::sim

#endif  // BDISK_SIM_ARRIVALS_H_
